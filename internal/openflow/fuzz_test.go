package openflow

import (
	"bytes"
	"strings"
	"testing"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// fuzzSeedMessages returns one representative instance per modeled message
// type, so the fuzzers start from structurally valid encodings.
func fuzzSeedMessages() []Message {
	match := &Match{
		InPort:  U32(3),
		EthType: U16(netpkt.EtherTypeIPv4),
		IPProto: U8(netpkt.ProtoTCP),
		IPv4Src: IPPtr(netpkt.IPv4{10, 0, 0, 1}),
		IPv4Dst: IPPtr(netpkt.IPv4{10, 0, 0, 2}),
		TCPSrc:  U16(44123),
		TCPDst:  U16(443),
	}
	actions := []Action{&ActionOutput{Port: 7, MaxLen: ControllerMaxLen}}
	return []Message{
		&Hello{},
		&Hello{Elements: []byte{0, 1, 0, 8, 0, 0, 0, 0x10}},
		&Error{ErrType: 1, Code: 9, Data: []byte("bad request")},
		&EchoRequest{Data: []byte("ping")},
		&EchoReply{Data: []byte("pong")},
		&FeaturesRequest{},
		&FeaturesReply{DatapathID: 0x00204afe12345678, NumBuffers: 256, NumTables: 254},
		&GetConfigRequest{},
		&GetConfigReply{Flags: 0, MissSendLen: 0xffff},
		&SetConfig{MissSendLen: 128},
		&PacketIn{BufferID: NoBuffer, Reason: 1, TableID: 0, Cookie: 42,
			Match: &Match{InPort: U32(3)}, Data: []byte{0xde, 0xad, 0xbe, 0xef}},
		&PacketOut{BufferID: NoBuffer, InPort: PortController, Actions: actions,
			Data: []byte{0xca, 0xfe}},
		&FlowMod{Cookie: 7, TableID: 1, Command: 0, IdleTimeout: 30, Priority: 100,
			BufferID: NoBuffer, OutPort: PortAny, OutGroup: PortAny, Match: match,
			Instructions: []Instruction{
				&InstructionApplyActions{Actions: actions},
				&InstructionGotoTable{TableID: 2},
			}},
		&FlowRemoved{Cookie: 7, Priority: 100, Reason: 0, TableID: 1,
			DurationSec: 10, PacketCount: 5, ByteCount: 500, Match: match},
		&PortStatus{Reason: 2},
		&TableMod{TableID: 1, Config: 3},
		&MultipartRequest{PartType: MultipartFlow, Flow: &FlowStatsRequest{
			TableID: AllTables, OutPort: PortAny, OutGroup: PortAny, Match: match}},
		&MultipartReply{PartType: MultipartFlow, Flows: []*FlowStatsEntry{{
			TableID: 1, DurationSec: 10, Priority: 100, Cookie: 7,
			PacketCount: 5, ByteCount: 500, Match: match,
			Instructions: []Instruction{&InstructionApplyActions{Actions: actions}},
		}}},
		&BarrierRequest{},
		&BarrierReply{},
		&Raw{RawType: TypeExperimenter, Body: []byte{0, 0, 0, 1, 0, 0, 0, 2}},
	}
}

// FuzzReadMessage feeds arbitrary byte streams through the full
// decode→encode→decode→encode cycle. The first decode may canonicalize
// (unknown OXMs are dropped, lengths are recomputed), but after that the
// representation must be a fixed point: the second and later round trips
// must be byte-identical, or the proxy would corrupt messages it relays.
func FuzzReadMessage(f *testing.F) {
	for i, m := range fuzzSeedMessages() {
		b, err := Encode(uint32(i+1), m)
		if err != nil {
			f.Fatalf("encoding seed %T: %v", m, err)
		}
		f.Add(b)
	}
	f.Add([]byte{Version, 0xff, 0, 8, 0, 0, 0, 1})    // unknown type → Raw
	f.Add([]byte{Version, 0, 0, 7, 0, 0, 0, 1})       // length < header
	f.Add([]byte{Version, 0, 0xff, 0xff, 0, 0, 0, 1}) // length > max
	f.Fuzz(func(t *testing.T, data []byte) {
		xid, m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		e1, err := Encode(xid, m)
		if err != nil {
			// Re-encoding may legitimately exceed MaxMessageLen when the
			// canonical form pads a match the input packed tightly.
			if strings.Contains(err.Error(), "exceeds max") {
				return
			}
			t.Fatalf("decoded %v does not re-encode: %v", m.Type(), err)
		}
		xid2, m2, err := ReadMessage(bytes.NewReader(e1))
		if err != nil {
			t.Fatalf("canonical encoding of %v does not decode: %v\n%x", m.Type(), err, e1)
		}
		if xid2 != xid {
			t.Fatalf("xid changed across round trip: %d != %d", xid2, xid)
		}
		e2, err := Encode(xid2, m2)
		if err != nil {
			t.Fatalf("re-decoded %v does not re-encode: %v", m2.Type(), err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("%v round trip is not a fixed point:\n first %x\nsecond %x", m.Type(), e1, e2)
		}
	})
}

// FuzzUnmarshalBody drives every concrete message type's body parser over
// arbitrary bytes, bypassing the header so the fuzzer spends its budget on
// the per-type decoders. Accepted bodies must re-marshal to a stable form.
func FuzzUnmarshalBody(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		body, err := m.MarshalBody()
		if err != nil {
			f.Fatalf("marshaling seed %T: %v", m, err)
		}
		f.Add(uint8(m.Type()), body)
	}
	f.Fuzz(func(t *testing.T, typ uint8, body []byte) {
		m := newMessage(MessageType(typ % (uint8(TypeBarrierReply) + 1)))
		if err := m.UnmarshalBody(body); err != nil {
			return
		}
		canon, err := m.MarshalBody()
		if err != nil {
			t.Fatalf("accepted %v body does not marshal: %v\n%x", m.Type(), err, body)
		}
		m2 := newMessage(m.Type())
		if err := m2.UnmarshalBody(canon); err != nil {
			t.Fatalf("canonical %v body does not parse: %v\n%x", m.Type(), err, canon)
		}
		canon2, err := m2.MarshalBody()
		if err != nil {
			t.Fatalf("re-parsed %v body does not marshal: %v", m.Type(), err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("%v body marshal is not a fixed point:\n first %x\nsecond %x", m.Type(), canon, canon2)
		}
	})
}
