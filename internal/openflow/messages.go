package openflow

import (
	"encoding/binary"
	"fmt"
)

// Hello opens version negotiation.
type Hello struct {
	// Elements carries optional hello elements verbatim.
	Elements []byte
}

var _ Message = (*Hello)(nil)

// Type implements Message.
func (*Hello) Type() MessageType { return TypeHello }

// MarshalBody implements Message.
func (h *Hello) MarshalBody() ([]byte, error) { return h.Elements, nil }

// UnmarshalBody implements Message.
func (h *Hello) UnmarshalBody(b []byte) error {
	h.Elements = append([]byte(nil), b...)
	return nil
}

// EchoRequest is a liveness probe.
type EchoRequest struct {
	Data []byte
}

var _ Message = (*EchoRequest)(nil)

// Type implements Message.
func (*EchoRequest) Type() MessageType { return TypeEchoRequest }

// MarshalBody implements Message.
func (e *EchoRequest) MarshalBody() ([]byte, error) { return e.Data, nil }

// UnmarshalBody implements Message.
func (e *EchoRequest) UnmarshalBody(b []byte) error {
	e.Data = append([]byte(nil), b...)
	return nil
}

// EchoReply answers an EchoRequest, mirroring its data.
type EchoReply struct {
	Data []byte
}

var _ Message = (*EchoReply)(nil)

// Type implements Message.
func (*EchoReply) Type() MessageType { return TypeEchoReply }

// MarshalBody implements Message.
func (e *EchoReply) MarshalBody() ([]byte, error) { return e.Data, nil }

// UnmarshalBody implements Message.
func (e *EchoReply) UnmarshalBody(b []byte) error {
	e.Data = append([]byte(nil), b...)
	return nil
}

// Error reports a protocol error (ofp_error_msg).
type Error struct {
	ErrType uint16
	Code    uint16
	Data    []byte
}

var _ Message = (*Error)(nil)

// Type implements Message.
func (*Error) Type() MessageType { return TypeError }

// MarshalBody implements Message.
func (e *Error) MarshalBody() ([]byte, error) {
	b := make([]byte, 4+len(e.Data))
	binary.BigEndian.PutUint16(b[0:2], e.ErrType)
	binary.BigEndian.PutUint16(b[2:4], e.Code)
	copy(b[4:], e.Data)
	return b, nil
}

// UnmarshalBody implements Message.
func (e *Error) UnmarshalBody(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("error msg: %w", errTooShort)
	}
	e.ErrType = binary.BigEndian.Uint16(b[0:2])
	e.Code = binary.BigEndian.Uint16(b[2:4])
	e.Data = append([]byte(nil), b[4:]...)
	return nil
}

// FeaturesRequest asks the switch for its datapath features.
type FeaturesRequest struct{}

var _ Message = (*FeaturesRequest)(nil)

// Type implements Message.
func (*FeaturesRequest) Type() MessageType { return TypeFeaturesRequest }

// MarshalBody implements Message.
func (*FeaturesRequest) MarshalBody() ([]byte, error) { return nil, nil }

// UnmarshalBody implements Message.
func (*FeaturesRequest) UnmarshalBody([]byte) error { return nil }

// FeaturesReply describes the switch datapath (ofp_switch_features). The
// DFI Proxy decrements NumTables toward the controller to hide table 0.
type FeaturesReply struct {
	DatapathID   uint64
	NumBuffers   uint32
	NumTables    uint8
	AuxiliaryID  uint8
	Capabilities uint32
}

var _ Message = (*FeaturesReply)(nil)

// Type implements Message.
func (*FeaturesReply) Type() MessageType { return TypeFeaturesReply }

// MarshalBody implements Message.
func (f *FeaturesReply) MarshalBody() ([]byte, error) {
	b := make([]byte, 24)
	binary.BigEndian.PutUint64(b[0:8], f.DatapathID)
	binary.BigEndian.PutUint32(b[8:12], f.NumBuffers)
	b[12] = f.NumTables
	b[13] = f.AuxiliaryID
	binary.BigEndian.PutUint32(b[16:20], f.Capabilities)
	return b, nil
}

// UnmarshalBody implements Message.
func (f *FeaturesReply) UnmarshalBody(b []byte) error {
	if len(b) < 24 {
		return fmt.Errorf("features reply: %w", errTooShort)
	}
	f.DatapathID = binary.BigEndian.Uint64(b[0:8])
	f.NumBuffers = binary.BigEndian.Uint32(b[8:12])
	f.NumTables = b[12]
	f.AuxiliaryID = b[13]
	f.Capabilities = binary.BigEndian.Uint32(b[16:20])
	return nil
}

// GetConfigRequest asks for the switch configuration.
type GetConfigRequest struct{}

var _ Message = (*GetConfigRequest)(nil)

// Type implements Message.
func (*GetConfigRequest) Type() MessageType { return TypeGetConfigReq }

// MarshalBody implements Message.
func (*GetConfigRequest) MarshalBody() ([]byte, error) { return nil, nil }

// UnmarshalBody implements Message.
func (*GetConfigRequest) UnmarshalBody([]byte) error { return nil }

// GetConfigReply carries the switch configuration.
type GetConfigReply struct {
	Flags       uint16
	MissSendLen uint16
}

var _ Message = (*GetConfigReply)(nil)

// Type implements Message.
func (*GetConfigReply) Type() MessageType { return TypeGetConfigReply }

// MarshalBody implements Message.
func (c *GetConfigReply) MarshalBody() ([]byte, error) {
	b := make([]byte, 4)
	binary.BigEndian.PutUint16(b[0:2], c.Flags)
	binary.BigEndian.PutUint16(b[2:4], c.MissSendLen)
	return b, nil
}

// UnmarshalBody implements Message.
func (c *GetConfigReply) UnmarshalBody(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("get config reply: %w", errTooShort)
	}
	c.Flags = binary.BigEndian.Uint16(b[0:2])
	c.MissSendLen = binary.BigEndian.Uint16(b[2:4])
	return nil
}

// SetConfig sets the switch configuration.
type SetConfig struct {
	Flags       uint16
	MissSendLen uint16
}

var _ Message = (*SetConfig)(nil)

// Type implements Message.
func (*SetConfig) Type() MessageType { return TypeSetConfig }

// MarshalBody implements Message.
func (c *SetConfig) MarshalBody() ([]byte, error) {
	b := make([]byte, 4)
	binary.BigEndian.PutUint16(b[0:2], c.Flags)
	binary.BigEndian.PutUint16(b[2:4], c.MissSendLen)
	return b, nil
}

// UnmarshalBody implements Message.
func (c *SetConfig) UnmarshalBody(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("set config: %w", errTooShort)
	}
	c.Flags = binary.BigEndian.Uint16(b[0:2])
	c.MissSendLen = binary.BigEndian.Uint16(b[2:4])
	return nil
}

// Packet-in reasons.
const (
	PacketInReasonNoMatch uint8 = 0
	PacketInReasonAction  uint8 = 1
)

// PacketIn carries a packet from the switch to the control plane
// (ofp_packet_in). DFI processes these before the controller (paper §III-B).
type PacketIn struct {
	BufferID uint32
	TotalLen uint16
	Reason   uint8
	TableID  uint8
	Cookie   uint64
	Match    *Match
	Data     []byte
}

var _ Message = (*PacketIn)(nil)

// Type implements Message.
func (*PacketIn) Type() MessageType { return TypePacketIn }

// MarshalBody implements Message.
func (p *PacketIn) MarshalBody() ([]byte, error) {
	match := p.Match
	if match == nil {
		match = &Match{}
	}
	mb := match.Marshal()
	b := make([]byte, 16+len(mb)+2+len(p.Data))
	binary.BigEndian.PutUint32(b[0:4], p.BufferID)
	totalLen := p.TotalLen
	if totalLen == 0 {
		totalLen = uint16(len(p.Data))
	}
	binary.BigEndian.PutUint16(b[4:6], totalLen)
	b[6] = p.Reason
	b[7] = p.TableID
	binary.BigEndian.PutUint64(b[8:16], p.Cookie)
	copy(b[16:], mb)
	copy(b[16+len(mb)+2:], p.Data)
	return b, nil
}

// AppendBody implements BodyAppender: the packet-in body append-encodes
// into dst without intermediate allocation, for the proxy relay path.
//
//dfi:hotpath
func (p *PacketIn) AppendBody(dst []byte) ([]byte, error) {
	n := len(dst)
	dst = grow(dst, 16)
	binary.BigEndian.PutUint32(dst[n:n+4], p.BufferID)
	totalLen := p.TotalLen
	if totalLen == 0 {
		totalLen = uint16(len(p.Data))
	}
	binary.BigEndian.PutUint16(dst[n+4:n+6], totalLen)
	dst[n+6] = p.Reason
	dst[n+7] = p.TableID
	binary.BigEndian.PutUint64(dst[n+8:n+16], p.Cookie)
	match := p.Match
	if match == nil {
		match = emptyMatch
	}
	dst = match.AppendTo(dst)
	dst = grow(dst, 2) // 2-byte pad before payload
	return appendBytes(dst, p.Data), nil
}

// UnmarshalBody implements Message.
func (p *PacketIn) UnmarshalBody(b []byte) error {
	if len(b) < 16 {
		return fmt.Errorf("packet-in: %w", errTooShort)
	}
	p.BufferID = binary.BigEndian.Uint32(b[0:4])
	p.TotalLen = binary.BigEndian.Uint16(b[4:6])
	p.Reason = b[6]
	p.TableID = b[7]
	p.Cookie = binary.BigEndian.Uint64(b[8:16])
	m, n, err := unmarshalMatch(b[16:])
	if err != nil {
		return fmt.Errorf("packet-in: %w", err)
	}
	p.Match = m
	rest := b[16+n:]
	if len(rest) < 2 {
		return fmt.Errorf("packet-in pad: %w", errTooShort)
	}
	p.Data = append([]byte(nil), rest[2:]...)
	return nil
}

// InPort returns the ingress port recorded in the packet-in match, or
// PortAny if absent.
func (p *PacketIn) InPort() uint32 {
	if p.Match != nil && p.Match.InPort != nil {
		return *p.Match.InPort
	}
	return PortAny
}

// PacketOut injects a packet into the data plane (ofp_packet_out).
type PacketOut struct {
	BufferID uint32
	InPort   uint32
	Actions  []Action
	Data     []byte
}

var _ Message = (*PacketOut)(nil)

// Type implements Message.
func (*PacketOut) Type() MessageType { return TypePacketOut }

// MarshalBody implements Message.
func (p *PacketOut) MarshalBody() ([]byte, error) {
	acts := marshalActions(p.Actions)
	b := make([]byte, 16+len(acts)+len(p.Data))
	binary.BigEndian.PutUint32(b[0:4], p.BufferID)
	binary.BigEndian.PutUint32(b[4:8], p.InPort)
	binary.BigEndian.PutUint16(b[8:10], uint16(len(acts)))
	copy(b[16:], acts)
	copy(b[16+len(acts):], p.Data)
	return b, nil
}

// AppendBody implements BodyAppender: the packet-out body append-encodes
// into dst without intermediate allocation, for the PCP release path.
//
//dfi:hotpath
func (p *PacketOut) AppendBody(dst []byte) ([]byte, error) {
	n := len(dst)
	dst = grow(dst, 16) // fixed header; pad bytes zeroed by grow
	binary.BigEndian.PutUint32(dst[n:n+4], p.BufferID)
	binary.BigEndian.PutUint32(dst[n+4:n+8], p.InPort)
	dst = appendActions(dst, p.Actions)
	binary.BigEndian.PutUint16(dst[n+8:n+10], uint16(len(dst)-n-16))
	return appendBytes(dst, p.Data), nil
}

// UnmarshalBody implements Message.
func (p *PacketOut) UnmarshalBody(b []byte) error {
	if len(b) < 16 {
		return fmt.Errorf("packet-out: %w", errTooShort)
	}
	p.BufferID = binary.BigEndian.Uint32(b[0:4])
	p.InPort = binary.BigEndian.Uint32(b[4:8])
	actsLen := int(binary.BigEndian.Uint16(b[8:10]))
	if 16+actsLen > len(b) {
		return fmt.Errorf("packet-out actions: %w", errTooShort)
	}
	acts, err := unmarshalActions(b[16 : 16+actsLen])
	if err != nil {
		return fmt.Errorf("packet-out: %w", err)
	}
	p.Actions = acts
	p.Data = append([]byte(nil), b[16+actsLen:]...)
	return nil
}

// Flow-mod commands (ofp_flow_mod_command).
const (
	FlowModAdd          uint8 = 0
	FlowModModify       uint8 = 1
	FlowModModifyStrict uint8 = 2
	FlowModDelete       uint8 = 3
	FlowModDeleteStrict uint8 = 4
)

// Flow-mod flags.
const (
	FlowFlagSendFlowRem uint16 = 1 << 0
)

// FlowMod programs a flow table entry (ofp_flow_mod). Cookie carries DFI's
// policy-rule tag used for cookie-scoped flushes (paper §III-B).
type FlowMod struct {
	Cookie       uint64
	CookieMask   uint64
	TableID      uint8
	Command      uint8
	IdleTimeout  uint16
	HardTimeout  uint16
	Priority     uint16
	BufferID     uint32
	OutPort      uint32
	OutGroup     uint32
	Flags        uint16
	Match        *Match
	Instructions []Instruction
}

var _ Message = (*FlowMod)(nil)

// Type implements Message.
func (*FlowMod) Type() MessageType { return TypeFlowMod }

// MarshalBody implements Message.
func (f *FlowMod) MarshalBody() ([]byte, error) {
	match := f.Match
	if match == nil {
		match = &Match{}
	}
	mb := match.Marshal()
	ib := marshalInstructions(f.Instructions)
	b := make([]byte, 40+len(mb)+len(ib))
	binary.BigEndian.PutUint64(b[0:8], f.Cookie)
	binary.BigEndian.PutUint64(b[8:16], f.CookieMask)
	b[16] = f.TableID
	b[17] = f.Command
	binary.BigEndian.PutUint16(b[18:20], f.IdleTimeout)
	binary.BigEndian.PutUint16(b[20:22], f.HardTimeout)
	binary.BigEndian.PutUint16(b[22:24], f.Priority)
	binary.BigEndian.PutUint32(b[24:28], f.BufferID)
	binary.BigEndian.PutUint32(b[28:32], f.OutPort)
	binary.BigEndian.PutUint32(b[32:36], f.OutGroup)
	binary.BigEndian.PutUint16(b[36:38], f.Flags)
	copy(b[40:], mb)
	copy(b[40+len(mb):], ib)
	return b, nil
}

// AppendBody implements BodyAppender: the flow-mod body append-encodes
// into dst without intermediate allocation. This is the PCP install and
// flush fan-out encode path.
//
//dfi:hotpath
func (f *FlowMod) AppendBody(dst []byte) ([]byte, error) {
	n := len(dst)
	dst = grow(dst, 40) // fixed header; pad bytes zeroed by grow
	binary.BigEndian.PutUint64(dst[n:n+8], f.Cookie)
	binary.BigEndian.PutUint64(dst[n+8:n+16], f.CookieMask)
	dst[n+16] = f.TableID
	dst[n+17] = f.Command
	binary.BigEndian.PutUint16(dst[n+18:n+20], f.IdleTimeout)
	binary.BigEndian.PutUint16(dst[n+20:n+22], f.HardTimeout)
	binary.BigEndian.PutUint16(dst[n+22:n+24], f.Priority)
	binary.BigEndian.PutUint32(dst[n+24:n+28], f.BufferID)
	binary.BigEndian.PutUint32(dst[n+28:n+32], f.OutPort)
	binary.BigEndian.PutUint32(dst[n+32:n+36], f.OutGroup)
	binary.BigEndian.PutUint16(dst[n+36:n+38], f.Flags)
	match := f.Match
	if match == nil {
		match = emptyMatch
	}
	dst = match.AppendTo(dst)
	return appendInstructions(dst, f.Instructions), nil
}

// UnmarshalBody implements Message.
func (f *FlowMod) UnmarshalBody(b []byte) error {
	if len(b) < 40 {
		return fmt.Errorf("flow-mod: %w", errTooShort)
	}
	f.Cookie = binary.BigEndian.Uint64(b[0:8])
	f.CookieMask = binary.BigEndian.Uint64(b[8:16])
	f.TableID = b[16]
	f.Command = b[17]
	f.IdleTimeout = binary.BigEndian.Uint16(b[18:20])
	f.HardTimeout = binary.BigEndian.Uint16(b[20:22])
	f.Priority = binary.BigEndian.Uint16(b[22:24])
	f.BufferID = binary.BigEndian.Uint32(b[24:28])
	f.OutPort = binary.BigEndian.Uint32(b[28:32])
	f.OutGroup = binary.BigEndian.Uint32(b[32:36])
	f.Flags = binary.BigEndian.Uint16(b[36:38])
	m, n, err := unmarshalMatch(b[40:])
	if err != nil {
		return fmt.Errorf("flow-mod: %w", err)
	}
	f.Match = m
	instrs, err := unmarshalInstructions(b[40+n:])
	if err != nil {
		return fmt.Errorf("flow-mod: %w", err)
	}
	f.Instructions = instrs
	return nil
}

// Flow-removed reasons.
const (
	FlowRemovedIdleTimeout uint8 = 0
	FlowRemovedHardTimeout uint8 = 1
	FlowRemovedDelete      uint8 = 2
)

// FlowRemoved notifies the control plane that a flow entry was removed
// (ofp_flow_removed).
type FlowRemoved struct {
	Cookie       uint64
	Priority     uint16
	Reason       uint8
	TableID      uint8
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	HardTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
	Match        *Match
}

var _ Message = (*FlowRemoved)(nil)

// Type implements Message.
func (*FlowRemoved) Type() MessageType { return TypeFlowRemoved }

// MarshalBody implements Message.
func (f *FlowRemoved) MarshalBody() ([]byte, error) {
	match := f.Match
	if match == nil {
		match = &Match{}
	}
	mb := match.Marshal()
	b := make([]byte, 40+len(mb))
	binary.BigEndian.PutUint64(b[0:8], f.Cookie)
	binary.BigEndian.PutUint16(b[8:10], f.Priority)
	b[10] = f.Reason
	b[11] = f.TableID
	binary.BigEndian.PutUint32(b[12:16], f.DurationSec)
	binary.BigEndian.PutUint32(b[16:20], f.DurationNsec)
	binary.BigEndian.PutUint16(b[20:22], f.IdleTimeout)
	binary.BigEndian.PutUint16(b[22:24], f.HardTimeout)
	binary.BigEndian.PutUint64(b[24:32], f.PacketCount)
	binary.BigEndian.PutUint64(b[32:40], f.ByteCount)
	copy(b[40:], mb)
	return b, nil
}

// UnmarshalBody implements Message.
func (f *FlowRemoved) UnmarshalBody(b []byte) error {
	if len(b) < 40 {
		return fmt.Errorf("flow-removed: %w", errTooShort)
	}
	f.Cookie = binary.BigEndian.Uint64(b[0:8])
	f.Priority = binary.BigEndian.Uint16(b[8:10])
	f.Reason = b[10]
	f.TableID = b[11]
	f.DurationSec = binary.BigEndian.Uint32(b[12:16])
	f.DurationNsec = binary.BigEndian.Uint32(b[16:20])
	f.IdleTimeout = binary.BigEndian.Uint16(b[20:22])
	f.HardTimeout = binary.BigEndian.Uint16(b[22:24])
	f.PacketCount = binary.BigEndian.Uint64(b[24:32])
	f.ByteCount = binary.BigEndian.Uint64(b[32:40])
	m, _, err := unmarshalMatch(b[40:])
	if err != nil {
		return fmt.Errorf("flow-removed: %w", err)
	}
	f.Match = m
	return nil
}

// BarrierRequest forces ordering of preceding messages.
type BarrierRequest struct{}

var _ Message = (*BarrierRequest)(nil)

// Type implements Message.
func (*BarrierRequest) Type() MessageType { return TypeBarrierRequest }

// MarshalBody implements Message.
func (*BarrierRequest) MarshalBody() ([]byte, error) { return nil, nil }

// UnmarshalBody implements Message.
func (*BarrierRequest) UnmarshalBody([]byte) error { return nil }

// BarrierReply acknowledges a BarrierRequest.
type BarrierReply struct{}

var _ Message = (*BarrierReply)(nil)

// Type implements Message.
func (*BarrierReply) Type() MessageType { return TypeBarrierReply }

// MarshalBody implements Message.
func (*BarrierReply) MarshalBody() ([]byte, error) { return nil, nil }

// UnmarshalBody implements Message.
func (*BarrierReply) UnmarshalBody([]byte) error { return nil }
