package openflow

import (
	"encoding/binary"
	"fmt"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// OXM class and field identifiers (OpenFlow Basic class only).
const (
	oxmClassBasic uint16 = 0x8000

	oxmFieldInPort  uint8 = 0
	oxmFieldEthDst  uint8 = 3
	oxmFieldEthSrc  uint8 = 4
	oxmFieldEthType uint8 = 5
	oxmFieldIPProto uint8 = 10
	oxmFieldIPv4Src uint8 = 11
	oxmFieldIPv4Dst uint8 = 12
	oxmFieldTCPSrc  uint8 = 13
	oxmFieldTCPDst  uint8 = 14
	oxmFieldUDPSrc  uint8 = 15
	oxmFieldUDPDst  uint8 = 16
	oxmFieldARPSPA  uint8 = 22
	oxmFieldARPTPA  uint8 = 23
)

// Match is an OXM flow match. Nil fields are wildcards. It covers the
// fields DFI compiles access-control rules over: ingress port, Ethernet
// addresses and type, IP protocol and addresses, and TCP/UDP ports.
type Match struct {
	InPort  *uint32
	EthSrc  *netpkt.MAC
	EthDst  *netpkt.MAC
	EthType *uint16
	IPProto *uint8
	IPv4Src *netpkt.IPv4
	IPv4Dst *netpkt.IPv4
	TCPSrc  *uint16
	TCPDst  *uint16
	UDPSrc  *uint16
	UDPDst  *uint16
	ARPSPA  *netpkt.IPv4
	ARPTPA  *netpkt.IPv4
}

// U32 returns a pointer to v; a convenience for building matches.
func U32(v uint32) *uint32 { return &v }

// U16 returns a pointer to v; a convenience for building matches.
func U16(v uint16) *uint16 { return &v }

// U8 returns a pointer to v; a convenience for building matches.
func U8(v uint8) *uint8 { return &v }

// MACPtr returns a pointer to m; a convenience for building matches.
func MACPtr(m netpkt.MAC) *netpkt.MAC { return &m }

// IPPtr returns a pointer to ip; a convenience for building matches.
func IPPtr(ip netpkt.IPv4) *netpkt.IPv4 { return &ip }

// String renders the match for logs; wildcarded fields are omitted.
func (m *Match) String() string {
	s := "match{"
	sep := ""
	add := func(format string, args ...any) {
		s += sep + fmt.Sprintf(format, args...)
		sep = ","
	}
	if m.InPort != nil {
		add("in_port=%d", *m.InPort)
	}
	if m.EthSrc != nil {
		add("eth_src=%s", *m.EthSrc)
	}
	if m.EthDst != nil {
		add("eth_dst=%s", *m.EthDst)
	}
	if m.EthType != nil {
		add("eth_type=0x%04x", *m.EthType)
	}
	if m.IPProto != nil {
		add("ip_proto=%d", *m.IPProto)
	}
	if m.IPv4Src != nil {
		add("ipv4_src=%s", *m.IPv4Src)
	}
	if m.IPv4Dst != nil {
		add("ipv4_dst=%s", *m.IPv4Dst)
	}
	if m.TCPSrc != nil {
		add("tcp_src=%d", *m.TCPSrc)
	}
	if m.TCPDst != nil {
		add("tcp_dst=%d", *m.TCPDst)
	}
	if m.UDPSrc != nil {
		add("udp_src=%d", *m.UDPSrc)
	}
	if m.UDPDst != nil {
		add("udp_dst=%d", *m.UDPDst)
	}
	if m.ARPSPA != nil {
		add("arp_spa=%s", *m.ARPSPA)
	}
	if m.ARPTPA != nil {
		add("arp_tpa=%s", *m.ARPTPA)
	}
	return s + "}"
}

// Clone returns a deep copy of the match.
func (m *Match) Clone() *Match {
	c := &Match{}
	if m.InPort != nil {
		c.InPort = U32(*m.InPort)
	}
	if m.EthSrc != nil {
		c.EthSrc = MACPtr(*m.EthSrc)
	}
	if m.EthDst != nil {
		c.EthDst = MACPtr(*m.EthDst)
	}
	if m.EthType != nil {
		c.EthType = U16(*m.EthType)
	}
	if m.IPProto != nil {
		c.IPProto = U8(*m.IPProto)
	}
	if m.IPv4Src != nil {
		c.IPv4Src = IPPtr(*m.IPv4Src)
	}
	if m.IPv4Dst != nil {
		c.IPv4Dst = IPPtr(*m.IPv4Dst)
	}
	if m.TCPSrc != nil {
		c.TCPSrc = U16(*m.TCPSrc)
	}
	if m.TCPDst != nil {
		c.TCPDst = U16(*m.TCPDst)
	}
	if m.UDPSrc != nil {
		c.UDPSrc = U16(*m.UDPSrc)
	}
	if m.UDPDst != nil {
		c.UDPDst = U16(*m.UDPDst)
	}
	if m.ARPSPA != nil {
		c.ARPSPA = IPPtr(*m.ARPSPA)
	}
	if m.ARPTPA != nil {
		c.ARPTPA = IPPtr(*m.ARPTPA)
	}
	return c
}

// NumFields returns the count of non-wildcard fields (used for specificity
// ordering in tests and debugging).
func (m *Match) NumFields() int {
	n := 0
	for _, set := range []bool{
		m.InPort != nil, m.EthSrc != nil, m.EthDst != nil, m.EthType != nil,
		m.IPProto != nil, m.IPv4Src != nil, m.IPv4Dst != nil,
		m.TCPSrc != nil, m.TCPDst != nil, m.UDPSrc != nil, m.UDPDst != nil,
		m.ARPSPA != nil, m.ARPTPA != nil,
	} {
		if set {
			n++
		}
	}
	return n
}

// MatchesKey reports whether a packet with flow key k arriving on inPort
// satisfies every non-wildcard field of the match.
func (m *Match) MatchesKey(k netpkt.FlowKey, inPort uint32) bool {
	if m.InPort != nil && *m.InPort != inPort {
		return false
	}
	if m.EthSrc != nil && *m.EthSrc != k.EthSrc {
		return false
	}
	if m.EthDst != nil && *m.EthDst != k.EthDst {
		return false
	}
	if m.EthType != nil && *m.EthType != k.EtherType {
		return false
	}
	if m.IPProto != nil && (!k.HasIP || k.EtherType != netpkt.EtherTypeIPv4 || *m.IPProto != k.IPProto) {
		return false
	}
	if m.IPv4Src != nil && (!k.HasIP || k.EtherType != netpkt.EtherTypeIPv4 || *m.IPv4Src != k.IPSrc) {
		return false
	}
	if m.IPv4Dst != nil && (!k.HasIP || k.EtherType != netpkt.EtherTypeIPv4 || *m.IPv4Dst != k.IPDst) {
		return false
	}
	if m.TCPSrc != nil && (!k.HasL4 || k.IPProto != netpkt.ProtoTCP || *m.TCPSrc != k.L4Src) {
		return false
	}
	if m.TCPDst != nil && (!k.HasL4 || k.IPProto != netpkt.ProtoTCP || *m.TCPDst != k.L4Dst) {
		return false
	}
	if m.UDPSrc != nil && (!k.HasL4 || k.IPProto != netpkt.ProtoUDP || *m.UDPSrc != k.L4Src) {
		return false
	}
	if m.UDPDst != nil && (!k.HasL4 || k.IPProto != netpkt.ProtoUDP || *m.UDPDst != k.L4Dst) {
		return false
	}
	if m.ARPSPA != nil && (!k.HasIP || k.EtherType != netpkt.EtherTypeARP || *m.ARPSPA != k.IPSrc) {
		return false
	}
	if m.ARPTPA != nil && (!k.HasIP || k.EtherType != netpkt.EtherTypeARP || *m.ARPTPA != k.IPDst) {
		return false
	}
	return true
}

// Covers reports whether m, viewed as a wildcard pattern, covers o: every
// packet matched by o is also matched by m. This is the OpenFlow non-strict
// flow-mod delete/modify semantics — for every field m pins, o must pin the
// same value.
func (m *Match) Covers(o *Match) bool {
	covU32 := func(a, b *uint32) bool { return a == nil || (b != nil && *a == *b) }
	covU16 := func(a, b *uint16) bool { return a == nil || (b != nil && *a == *b) }
	covU8 := func(a, b *uint8) bool { return a == nil || (b != nil && *a == *b) }
	covMAC := func(a, b *netpkt.MAC) bool { return a == nil || (b != nil && *a == *b) }
	covIP := func(a, b *netpkt.IPv4) bool { return a == nil || (b != nil && *a == *b) }
	return covU32(m.InPort, o.InPort) &&
		covMAC(m.EthSrc, o.EthSrc) && covMAC(m.EthDst, o.EthDst) &&
		covU16(m.EthType, o.EthType) && covU8(m.IPProto, o.IPProto) &&
		covIP(m.IPv4Src, o.IPv4Src) && covIP(m.IPv4Dst, o.IPv4Dst) &&
		covU16(m.TCPSrc, o.TCPSrc) && covU16(m.TCPDst, o.TCPDst) &&
		covU16(m.UDPSrc, o.UDPSrc) && covU16(m.UDPDst, o.UDPDst) &&
		covIP(m.ARPSPA, o.ARPSPA) && covIP(m.ARPTPA, o.ARPTPA)
}

// Equal reports whether two matches specify the same fields and values.
func (m *Match) Equal(o *Match) bool {
	eqU32 := func(a, b *uint32) bool { return (a == nil) == (b == nil) && (a == nil || *a == *b) }
	eqU16 := func(a, b *uint16) bool { return (a == nil) == (b == nil) && (a == nil || *a == *b) }
	eqU8 := func(a, b *uint8) bool { return (a == nil) == (b == nil) && (a == nil || *a == *b) }
	eqMAC := func(a, b *netpkt.MAC) bool { return (a == nil) == (b == nil) && (a == nil || *a == *b) }
	eqIP := func(a, b *netpkt.IPv4) bool { return (a == nil) == (b == nil) && (a == nil || *a == *b) }
	return eqU32(m.InPort, o.InPort) &&
		eqMAC(m.EthSrc, o.EthSrc) && eqMAC(m.EthDst, o.EthDst) &&
		eqU16(m.EthType, o.EthType) && eqU8(m.IPProto, o.IPProto) &&
		eqIP(m.IPv4Src, o.IPv4Src) && eqIP(m.IPv4Dst, o.IPv4Dst) &&
		eqU16(m.TCPSrc, o.TCPSrc) && eqU16(m.TCPDst, o.TCPDst) &&
		eqU16(m.UDPSrc, o.UDPSrc) && eqU16(m.UDPDst, o.UDPDst) &&
		eqIP(m.ARPSPA, o.ARPSPA) && eqIP(m.ARPTPA, o.ARPTPA)
}

// ExactMatchFor builds the most specific match for a packet with flow key k
// received on inPort: every identifier available in the packet is pinned.
// This is how the PCP compiles per-flow access-control rules (paper §III-B).
func ExactMatchFor(k netpkt.FlowKey, inPort uint32) *Match {
	m := &Match{
		InPort:  U32(inPort),
		EthSrc:  MACPtr(k.EthSrc),
		EthDst:  MACPtr(k.EthDst),
		EthType: U16(k.EtherType),
	}
	if k.HasIP && k.EtherType == netpkt.EtherTypeIPv4 {
		m.IPProto = U8(k.IPProto)
		m.IPv4Src = IPPtr(k.IPSrc)
		m.IPv4Dst = IPPtr(k.IPDst)
		if k.HasL4 {
			switch k.IPProto {
			case netpkt.ProtoTCP:
				m.TCPSrc = U16(k.L4Src)
				m.TCPDst = U16(k.L4Dst)
			case netpkt.ProtoUDP:
				m.UDPSrc = U16(k.L4Src)
				m.UDPDst = U16(k.L4Dst)
			}
		}
	}
	if k.HasIP && k.EtherType == netpkt.EtherTypeARP {
		m.ARPSPA = IPPtr(k.IPSrc)
		m.ARPTPA = IPPtr(k.IPDst)
	}
	return m
}

func oxmHeader(field uint8, length int) uint32 {
	return uint32(oxmClassBasic)<<16 | uint32(field&0x7f)<<9 | uint32(length&0xff)
}

// emptyMatch is the all-wildcard ofp_match encoded for messages with a nil
// Match. Shared so hot-path encoders never construct one per message.
var emptyMatch = &Match{}

// OXM append helpers: each extends dst through grow and writes the TLV in
// place, so the annotated callers stay allocation-free on reused buffers.

func appendOXMU32(dst []byte, field uint8, v uint32) []byte {
	n := len(dst)
	dst = grow(dst, 8)
	binary.BigEndian.PutUint32(dst[n:n+4], oxmHeader(field, 4))
	binary.BigEndian.PutUint32(dst[n+4:n+8], v)
	return dst
}

func appendOXMU16(dst []byte, field uint8, v uint16) []byte {
	n := len(dst)
	dst = grow(dst, 6)
	binary.BigEndian.PutUint32(dst[n:n+4], oxmHeader(field, 2))
	binary.BigEndian.PutUint16(dst[n+4:n+6], v)
	return dst
}

func appendOXMU8(dst []byte, field uint8, v uint8) []byte {
	n := len(dst)
	dst = grow(dst, 5)
	binary.BigEndian.PutUint32(dst[n:n+4], oxmHeader(field, 1))
	dst[n+4] = v
	return dst
}

func appendOXMMAC(dst []byte, field uint8, v netpkt.MAC) []byte {
	n := len(dst)
	dst = grow(dst, 10)
	binary.BigEndian.PutUint32(dst[n:n+4], oxmHeader(field, 6))
	copy(dst[n+4:n+10], v[:])
	return dst
}

// AppendTo append-encodes the match as an ofp_match (type OFPMT_OXM)
// including trailing padding to 8 bytes, and returns the extended slice.
// With a reused buffer it performs no allocation.
//
//dfi:hotpath
func (m *Match) AppendTo(dst []byte) []byte {
	start := len(dst)
	dst = grow(dst, 4) // type + length, patched below
	if m.InPort != nil {
		dst = appendOXMU32(dst, oxmFieldInPort, *m.InPort)
	}
	if m.EthDst != nil {
		dst = appendOXMMAC(dst, oxmFieldEthDst, *m.EthDst)
	}
	if m.EthSrc != nil {
		dst = appendOXMMAC(dst, oxmFieldEthSrc, *m.EthSrc)
	}
	if m.EthType != nil {
		dst = appendOXMU16(dst, oxmFieldEthType, *m.EthType)
	}
	if m.IPProto != nil {
		dst = appendOXMU8(dst, oxmFieldIPProto, *m.IPProto)
	}
	if m.IPv4Src != nil {
		dst = appendOXMU32(dst, oxmFieldIPv4Src, m.IPv4Src.Uint32())
	}
	if m.IPv4Dst != nil {
		dst = appendOXMU32(dst, oxmFieldIPv4Dst, m.IPv4Dst.Uint32())
	}
	if m.TCPSrc != nil {
		dst = appendOXMU16(dst, oxmFieldTCPSrc, *m.TCPSrc)
	}
	if m.TCPDst != nil {
		dst = appendOXMU16(dst, oxmFieldTCPDst, *m.TCPDst)
	}
	if m.UDPSrc != nil {
		dst = appendOXMU16(dst, oxmFieldUDPSrc, *m.UDPSrc)
	}
	if m.UDPDst != nil {
		dst = appendOXMU16(dst, oxmFieldUDPDst, *m.UDPDst)
	}
	if m.ARPSPA != nil {
		dst = appendOXMU32(dst, oxmFieldARPSPA, m.ARPSPA.Uint32())
	}
	if m.ARPTPA != nil {
		dst = appendOXMU32(dst, oxmFieldARPTPA, m.ARPTPA.Uint32())
	}

	// ofp_match: type, length (covers type+length+oxms, excludes pad).
	unpadded := len(dst) - start
	binary.BigEndian.PutUint16(dst[start:start+2], 1) // OFPMT_OXM
	binary.BigEndian.PutUint16(dst[start+2:start+4], uint16(unpadded))
	padded := (unpadded + 7) / 8 * 8
	return grow(dst, padded-unpadded) // grow zeroes the pad bytes
}

// Marshal serializes the match as an ofp_match (type OFPMT_OXM) including
// trailing padding to 8 bytes. Hot paths use AppendTo with a reused buffer.
func (m *Match) Marshal() []byte {
	return m.AppendTo(nil)
}

// unmarshalMatch parses an ofp_match at the start of b, returning the match
// and the total padded length consumed.
func unmarshalMatch(b []byte) (*Match, int, error) {
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("match: %w", errTooShort)
	}
	mt := binary.BigEndian.Uint16(b[0:2])
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if mt != 1 {
		return nil, 0, fmt.Errorf("match: unsupported type %d", mt)
	}
	if length < 4 || length > len(b) {
		return nil, 0, fmt.Errorf("match: bad length %d: %w", length, errTooShort)
	}
	padded := (length + 7) / 8 * 8
	if padded > len(b) {
		return nil, 0, fmt.Errorf("match: padding: %w", errTooShort)
	}
	m := &Match{}
	oxms := b[4:length]
	for len(oxms) > 0 {
		if len(oxms) < 4 {
			return nil, 0, fmt.Errorf("match: oxm header: %w", errTooShort)
		}
		hdr := binary.BigEndian.Uint32(oxms[0:4])
		class := uint16(hdr >> 16)
		field := uint8(hdr>>9) & 0x7f
		hasMask := hdr&0x100 != 0
		vlen := int(hdr & 0xff)
		if len(oxms) < 4+vlen {
			return nil, 0, fmt.Errorf("match: oxm value: %w", errTooShort)
		}
		val := oxms[4 : 4+vlen]
		oxms = oxms[4+vlen:]
		if class != oxmClassBasic || hasMask {
			continue // skip unknown classes and masked fields
		}
		if err := m.setOXM(field, val); err != nil {
			return nil, 0, err
		}
	}
	return m, padded, nil
}

func (m *Match) setOXM(field uint8, val []byte) error {
	wrongLen := func(want int) error {
		return fmt.Errorf("match: oxm field %d: want %d bytes, got %d", field, want, len(val))
	}
	switch field {
	case oxmFieldInPort:
		if len(val) != 4 {
			return wrongLen(4)
		}
		m.InPort = U32(binary.BigEndian.Uint32(val))
	case oxmFieldEthDst:
		if len(val) != 6 {
			return wrongLen(6)
		}
		var mac netpkt.MAC
		copy(mac[:], val)
		m.EthDst = &mac
	case oxmFieldEthSrc:
		if len(val) != 6 {
			return wrongLen(6)
		}
		var mac netpkt.MAC
		copy(mac[:], val)
		m.EthSrc = &mac
	case oxmFieldEthType:
		if len(val) != 2 {
			return wrongLen(2)
		}
		m.EthType = U16(binary.BigEndian.Uint16(val))
	case oxmFieldIPProto:
		if len(val) != 1 {
			return wrongLen(1)
		}
		m.IPProto = U8(val[0])
	case oxmFieldIPv4Src:
		if len(val) != 4 {
			return wrongLen(4)
		}
		m.IPv4Src = IPPtr(netpkt.IPv4FromUint32(binary.BigEndian.Uint32(val)))
	case oxmFieldIPv4Dst:
		if len(val) != 4 {
			return wrongLen(4)
		}
		m.IPv4Dst = IPPtr(netpkt.IPv4FromUint32(binary.BigEndian.Uint32(val)))
	case oxmFieldTCPSrc:
		if len(val) != 2 {
			return wrongLen(2)
		}
		m.TCPSrc = U16(binary.BigEndian.Uint16(val))
	case oxmFieldTCPDst:
		if len(val) != 2 {
			return wrongLen(2)
		}
		m.TCPDst = U16(binary.BigEndian.Uint16(val))
	case oxmFieldUDPSrc:
		if len(val) != 2 {
			return wrongLen(2)
		}
		m.UDPSrc = U16(binary.BigEndian.Uint16(val))
	case oxmFieldUDPDst:
		if len(val) != 2 {
			return wrongLen(2)
		}
		m.UDPDst = U16(binary.BigEndian.Uint16(val))
	case oxmFieldARPSPA:
		if len(val) != 4 {
			return wrongLen(4)
		}
		m.ARPSPA = IPPtr(netpkt.IPv4FromUint32(binary.BigEndian.Uint32(val)))
	case oxmFieldARPTPA:
		if len(val) != 4 {
			return wrongLen(4)
		}
		m.ARPTPA = IPPtr(netpkt.IPv4FromUint32(binary.BigEndian.Uint32(val)))
	}
	return nil
}
