package openflow

import (
	"encoding/binary"
	"fmt"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// Port-status reasons (ofp_port_reason).
const (
	PortReasonAdd    uint8 = 0
	PortReasonDelete uint8 = 1
	PortReasonModify uint8 = 2
)

// Port state bits (ofp_port_state).
const (
	PortStateLinkDown uint32 = 1 << 0
	PortStateBlocked  uint32 = 1 << 1
	PortStateLive     uint32 = 1 << 2
)

// PortDesc describes one switch port (ofp_port).
type PortDesc struct {
	PortNo uint32
	HWAddr netpkt.MAC
	Name   string // at most 15 bytes on the wire
	Config uint32
	State  uint32
}

const portDescLen = 64

func (p *PortDesc) marshal() []byte {
	b := make([]byte, portDescLen)
	binary.BigEndian.PutUint32(b[0:4], p.PortNo)
	copy(b[8:14], p.HWAddr[:])
	name := p.Name
	if len(name) > 15 {
		name = name[:15]
	}
	copy(b[16:31], name)
	binary.BigEndian.PutUint32(b[32:36], p.Config)
	binary.BigEndian.PutUint32(b[36:40], p.State)
	// Feature/speed fields are zero: the software switch does not model
	// link speeds.
	return b
}

func unmarshalPortDesc(b []byte) (*PortDesc, error) {
	if len(b) < portDescLen {
		return nil, fmt.Errorf("port desc: %w", errTooShort)
	}
	p := &PortDesc{
		PortNo: binary.BigEndian.Uint32(b[0:4]),
		Config: binary.BigEndian.Uint32(b[32:36]),
		State:  binary.BigEndian.Uint32(b[36:40]),
	}
	copy(p.HWAddr[:], b[8:14])
	name := b[16:32]
	for i, c := range name {
		if c == 0 {
			name = name[:i]
			break
		}
	}
	p.Name = string(name)
	return p, nil
}

// PortStatus announces a port change to the control plane
// (ofp_port_status). The DFI Proxy relays these unmodified; the controller
// reacts by purging stale learned locations.
type PortStatus struct {
	Reason uint8
	Desc   PortDesc
}

var _ Message = (*PortStatus)(nil)

// Type implements Message.
func (*PortStatus) Type() MessageType { return TypePortStatus }

// MarshalBody implements Message.
func (p *PortStatus) MarshalBody() ([]byte, error) {
	b := make([]byte, 8+portDescLen)
	b[0] = p.Reason
	copy(b[8:], p.Desc.marshal())
	return b, nil
}

// UnmarshalBody implements Message.
func (p *PortStatus) UnmarshalBody(b []byte) error {
	if len(b) < 8+portDescLen {
		return fmt.Errorf("port status: %w", errTooShort)
	}
	p.Reason = b[0]
	desc, err := unmarshalPortDesc(b[8:])
	if err != nil {
		return err
	}
	p.Desc = *desc
	return nil
}

// TableMod configures a flow table (ofp_table_mod). DFI's proxy shifts its
// table id like any other table reference.
type TableMod struct {
	TableID uint8
	Config  uint32
}

var _ Message = (*TableMod)(nil)

// Type implements Message.
func (*TableMod) Type() MessageType { return TypeTableMod }

// MarshalBody implements Message.
func (t *TableMod) MarshalBody() ([]byte, error) {
	b := make([]byte, 8)
	b[0] = t.TableID
	binary.BigEndian.PutUint32(b[4:8], t.Config)
	return b, nil
}

// UnmarshalBody implements Message.
func (t *TableMod) UnmarshalBody(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("table mod: %w", errTooShort)
	}
	t.TableID = b[0]
	t.Config = binary.BigEndian.Uint32(b[4:8])
	return nil
}
