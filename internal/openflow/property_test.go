package openflow

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// randomMatch builds a match with a random subset of fields set.
func randomMatch(rng *rand.Rand) *Match {
	m := &Match{}
	if rng.Intn(2) == 0 {
		m.InPort = U32(rng.Uint32() % 1000)
	}
	if rng.Intn(2) == 0 {
		m.EthSrc = MACPtr(randomMAC(rng))
	}
	if rng.Intn(2) == 0 {
		m.EthDst = MACPtr(randomMAC(rng))
	}
	switch rng.Intn(3) {
	case 0:
		m.EthType = U16(netpkt.EtherTypeIPv4)
		if rng.Intn(2) == 0 {
			m.IPv4Src = IPPtr(netpkt.IPv4FromUint32(rng.Uint32()))
		}
		if rng.Intn(2) == 0 {
			m.IPv4Dst = IPPtr(netpkt.IPv4FromUint32(rng.Uint32()))
		}
		switch rng.Intn(3) {
		case 0:
			m.IPProto = U8(netpkt.ProtoTCP)
			if rng.Intn(2) == 0 {
				m.TCPSrc = U16(uint16(rng.Uint32()))
			}
			if rng.Intn(2) == 0 {
				m.TCPDst = U16(uint16(rng.Uint32()))
			}
		case 1:
			m.IPProto = U8(netpkt.ProtoUDP)
			if rng.Intn(2) == 0 {
				m.UDPSrc = U16(uint16(rng.Uint32()))
			}
			if rng.Intn(2) == 0 {
				m.UDPDst = U16(uint16(rng.Uint32()))
			}
		}
	case 1:
		m.EthType = U16(netpkt.EtherTypeARP)
		if rng.Intn(2) == 0 {
			m.ARPSPA = IPPtr(netpkt.IPv4FromUint32(rng.Uint32()))
		}
		if rng.Intn(2) == 0 {
			m.ARPTPA = IPPtr(netpkt.IPv4FromUint32(rng.Uint32()))
		}
	}
	return m
}

func randomMAC(rng *rand.Rand) netpkt.MAC {
	var m netpkt.MAC
	for i := range m {
		m[i] = byte(rng.Intn(256))
	}
	return m
}

func TestPropertyMatchMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		m := randomMatch(rng)
		b := m.Marshal()
		if len(b)%8 != 0 {
			t.Fatalf("match %v marshals to %d bytes (not 8-aligned)", m, len(b))
		}
		got, n, err := unmarshalMatch(b)
		if err != nil {
			t.Fatalf("match %v: %v", m, err)
		}
		if n != len(b) {
			t.Fatalf("match %v: consumed %d of %d", m, n, len(b))
		}
		if !got.Equal(m) {
			t.Fatalf("round trip: %v != %v", got, m)
		}
		// Re-marshal must be byte-identical (stable encoding).
		if !bytes.Equal(got.Marshal(), b) {
			t.Fatalf("unstable encoding for %v", m)
		}
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		m := randomMatch(rng)
		c := m.Clone()
		if !c.Equal(m) || !m.Equal(c) {
			t.Fatalf("clone not equal: %v vs %v", m, c)
		}
		if m.NumFields() != c.NumFields() {
			t.Fatalf("clone field count differs")
		}
	}
}

func TestPropertyCoversReflexiveAndWildcard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	wildcard := &Match{}
	for i := 0; i < 1000; i++ {
		m := randomMatch(rng)
		if !m.Covers(m) {
			t.Fatalf("Covers not reflexive for %v", m)
		}
		if !wildcard.Covers(m) {
			t.Fatalf("wildcard does not cover %v", m)
		}
		if m.NumFields() > 0 && m.Covers(wildcard) {
			t.Fatalf("%v covers the wildcard", m)
		}
	}
}

// randomFrame builds a frame and returns it with its flow key.
func randomFrame(rng *rand.Rand) (netpkt.FlowKey, uint32) {
	srcMAC, dstMAC := randomMAC(rng), randomMAC(rng)
	srcIP := netpkt.IPv4FromUint32(rng.Uint32())
	dstIP := netpkt.IPv4FromUint32(rng.Uint32())
	inPort := rng.Uint32()%48 + 1
	var frame []byte
	switch rng.Intn(3) {
	case 0:
		frame = netpkt.BuildTCP(srcMAC, dstMAC, srcIP, dstIP, &netpkt.TCPSegment{
			SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()), Flags: netpkt.TCPSyn})
	case 1:
		frame = netpkt.BuildUDP(srcMAC, dstMAC, srcIP, dstIP, &netpkt.UDPDatagram{
			SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32())})
	default:
		frame = netpkt.BuildICMP(srcMAC, dstMAC, srcIP, dstIP, &netpkt.ICMPMessage{Type: netpkt.ICMPEchoRequest})
	}
	key, err := netpkt.ExtractFlowKey(frame)
	if err != nil {
		panic(err)
	}
	return key, inPort
}

// TestPropertyExactMatchCoherence: for random packets, the exact match
// built from a packet matches that packet, and any match that covers the
// exact match also matches the packet.
func TestPropertyExactMatchCoherence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		key, inPort := randomFrame(rng)
		exact := ExactMatchFor(key, inPort)
		if !exact.MatchesKey(key, inPort) {
			t.Fatalf("exact match does not match its own packet: %v vs %v", exact, key)
		}
		// Build a widened pattern by dropping a random subset of fields.
		widened := exact.Clone()
		if rng.Intn(2) == 0 {
			widened.TCPSrc, widened.TCPDst = nil, nil
			widened.UDPSrc, widened.UDPDst = nil, nil
		}
		if rng.Intn(2) == 0 {
			widened.IPv4Src, widened.IPv4Dst = nil, nil
		}
		if rng.Intn(2) == 0 {
			widened.InPort = nil
		}
		if !widened.Covers(exact) {
			t.Fatalf("widened %v does not cover exact %v", widened, exact)
		}
		if !widened.MatchesKey(key, inPort) {
			t.Fatalf("widened %v does not match packet %v", widened, key)
		}
	}
}

// TestPropertyCoversImpliesMatches: if A covers B and a packet matches B,
// the packet matches A — the property the switch's delete/modify semantics
// and the PCP's widening safety both rely on.
func TestPropertyCoversImpliesMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checked := 0
	for i := 0; i < 20000 && checked < 2000; i++ {
		key, inPort := randomFrame(rng)
		b := ExactMatchFor(key, inPort)
		a := randomMatch(rng)
		if !a.Covers(b) {
			continue
		}
		checked++
		if !a.MatchesKey(key, inPort) {
			t.Fatalf("a=%v covers b=%v but does not match b's packet %v", a, b, key)
		}
	}
	if checked == 0 {
		t.Fatal("no covering pairs generated")
	}
}

func TestPropertyEncodeDecodeAllMessageTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mkMatch := func() *Match { return randomMatch(rng) }
	for i := 0; i < 500; i++ {
		msgs := []Message{
			&Hello{},
			&EchoRequest{Data: randomBytes(rng, 16)},
			&Error{ErrType: uint16(rng.Uint32()), Code: uint16(rng.Uint32()), Data: randomBytes(rng, 8)},
			&FeaturesReply{DatapathID: rng.Uint64(), NumBuffers: rng.Uint32(), NumTables: uint8(rng.Uint32())},
			&PacketIn{BufferID: NoBuffer, Reason: uint8(rng.Intn(2)), TableID: uint8(rng.Intn(4)),
				Cookie: rng.Uint64(), Match: mkMatch(), Data: randomBytes(rng, 64)},
			&FlowMod{Cookie: rng.Uint64(), TableID: uint8(rng.Intn(4)), Command: uint8(rng.Intn(5)),
				Priority: uint16(rng.Uint32()), BufferID: NoBuffer, Match: mkMatch()},
			&FlowRemoved{Cookie: rng.Uint64(), Priority: uint16(rng.Uint32()),
				Reason: uint8(rng.Intn(3)), Match: mkMatch()},
			&PacketOut{BufferID: NoBuffer, InPort: rng.Uint32(),
				Actions: []Action{&ActionOutput{Port: rng.Uint32()}}, Data: randomBytes(rng, 32)},
		}
		for _, msg := range msgs {
			xid := rng.Uint32()
			b, err := Encode(xid, msg)
			if err != nil {
				t.Fatalf("%v: %v", msg.Type(), err)
			}
			gotXID, got, err := ReadMessage(bytes.NewReader(b))
			if err != nil {
				t.Fatalf("%v: decode: %v", msg.Type(), err)
			}
			if gotXID != xid || got.Type() != msg.Type() {
				t.Fatalf("%v: xid/type mismatch", msg.Type())
			}
			// Decode→re-encode is stable.
			b2, err := Encode(xid, got)
			if err != nil {
				t.Fatalf("%v: re-encode: %v", msg.Type(), err)
			}
			if !bytes.Equal(b, b2) {
				t.Fatalf("%v: unstable encoding\n% x\n% x", msg.Type(), b, b2)
			}
		}
	}
}

func randomBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, rng.Intn(n+1))
	rng.Read(b)
	return b
}

// TestPropertyDecoderRejectsGarbage: random bodies either decode cleanly
// or error, but never panic.
func TestPropertyDecoderNeverPanics(t *testing.T) {
	f := func(typeByte uint8, body []byte) bool {
		if len(body) > 1024 {
			body = body[:1024]
		}
		hdr := make([]byte, 8+len(body))
		hdr[0] = Version
		hdr[1] = typeByte % 22
		hdr[2] = byte((8 + len(body)) >> 8)
		hdr[3] = byte(8 + len(body))
		_, _, _ = ReadMessage(bytes.NewReader(hdr))
		return true
	}
	cfg := &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQuickMatchValues(t *testing.T) {
	// quick-generated value structs survive pointerization and equality.
	f := func(inPort uint32, ethType uint16, proto uint8) bool {
		m := &Match{InPort: U32(inPort), EthType: U16(ethType), IPProto: U8(proto)}
		got, _, err := unmarshalMatch(m.Marshal())
		if err != nil {
			return false
		}
		return got.Equal(m) && reflect.DeepEqual(*got.InPort, inPort)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
