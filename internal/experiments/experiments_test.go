package experiments

import (
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/testbed"
)

func TestTable1CalibratedMatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock calibrated benchmark")
	}
	res, err := RunTable1(MicrobenchConfig{
		Flows:         80,
		Trials:        2,
		TrialDuration: 1500 * time.Millisecond,
		Calibrated:    true,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	// Paper: 5.73 ms ± 3.39 under no load. Accept a generous band.
	if res.Latency.Mean < 4*time.Millisecond || res.Latency.Mean > 9*time.Millisecond {
		t.Fatalf("latency mean = %v, want ≈5.7ms", res.Latency.Mean)
	}
	// Paper: ≈1350 flows/sec at saturation (8 workers / 5.73 ms).
	if res.ThroughputMean < 900 || res.ThroughputMean > 1900 {
		t.Fatalf("throughput = %.0f flows/sec, want ≈1350", res.ThroughputMean)
	}
}

func TestTable2CalibratedBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock calibrated benchmark")
	}
	res, err := RunTable2(MicrobenchConfig{Flows: 80, Calibrated: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	within := func(name string, got, want, tol time.Duration) {
		if got < want-tol || got > want+tol {
			t.Errorf("%s mean = %v, want %v ± %v", name, got, want, tol)
		}
	}
	within("binding query", res.BindingQuery.Mean, 2410*time.Microsecond, 1200*time.Microsecond)
	within("policy query", res.PolicyQuery.Mean, 2520*time.Microsecond, 1200*time.Microsecond)
	within("other PCP", res.OtherPCP.Mean, 390*time.Microsecond, 600*time.Microsecond)
	within("proxy", res.Proxy.Mean, 160*time.Microsecond, 400*time.Microsecond)
	// The stages must sum to roughly the overall latency.
	sum := res.BindingQuery.Mean + res.PolicyQuery.Mean + res.OtherPCP.Mean + res.Proxy.Mean
	if res.Overall.Mean < sum-2*time.Millisecond || res.Overall.Mean > sum+4*time.Millisecond {
		t.Errorf("overall %v far from stage sum %v", res.Overall.Mean, sum)
	}
}

func TestTable1NativeIsFast(t *testing.T) {
	res, err := RunTable1(MicrobenchConfig{
		Flows:         50,
		Trials:        1,
		TrialDuration: 500 * time.Millisecond,
		OfferedRate:   50000,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Uncalibrated, the pure-Go control plane is far faster than the
	// paper's MySQL/RabbitMQ deployment.
	if res.Latency.Mean > 2*time.Millisecond {
		t.Fatalf("native latency = %v, want sub-2ms", res.Latency.Mean)
	}
	if res.ThroughputMean < 3000 {
		t.Fatalf("native throughput = %.0f, want >3000", res.ThroughputMean)
	}
}

func TestFig4ShapeTwoPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock calibrated benchmark")
	}
	if raceEnabled {
		t.Skip("race instrumentation slows the calibrated rig past its timing bands")
	}
	res, err := RunFig4(Fig4Config{
		Rates:      []int{0, 600},
		Samples:    10,
		Calibrated: true,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	idle := res.WithDFI[0].TTFB.Mean
	loaded := res.WithDFI[1].TTFB.Mean
	noDFIIdle := res.WithoutDFI[0].TTFB.Mean
	noDFILoaded := res.WithoutDFI[1].TTFB.Mean
	// Paper: without DFI ≈4–6 ms flat; with DFI ≈22 ms idle, rising with
	// load. Accept generous bands; assert the orderings that define the
	// figure's shape.
	if noDFIIdle > 15*time.Millisecond {
		t.Errorf("no-DFI idle TTFB = %v, want <15ms", noDFIIdle)
	}
	if noDFILoaded > 3*noDFIIdle+10*time.Millisecond {
		t.Errorf("no-DFI TTFB rose under load: %v → %v", noDFIIdle, noDFILoaded)
	}
	if idle < noDFIIdle {
		t.Errorf("DFI idle TTFB %v below no-DFI %v", idle, noDFIIdle)
	}
	if idle < 10*time.Millisecond || idle > 60*time.Millisecond {
		t.Errorf("DFI idle TTFB = %v, want ≈22ms", idle)
	}
	if loaded < idle {
		t.Errorf("DFI TTFB did not rise with load: %v → %v", idle, loaded)
	}
}

func TestFig5aShape(t *testing.T) {
	res, err := RunFig5a(Fig5aConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	nBase := len(res.Baseline.Infections)
	nSRBAC := len(res.SRBAC.Infections)
	nATRBAC := len(res.ATRBAC.Infections)
	if nBase != 92 || nSRBAC != 92 {
		t.Fatalf("baseline/S-RBAC infected %d/%d, want 92/92", nBase, nSRBAC)
	}
	if nATRBAC >= nSRBAC {
		t.Fatalf("AT-RBAC (%d) not fewer than S-RBAC (%d)", nATRBAC, nSRBAC)
	}
	// Baseline all within minutes; S-RBAC slower; AT-RBAC slowest.
	if res.Baseline.InfectedBy(5*time.Minute) != 92 {
		t.Error("baseline not fully infected within 5 min")
	}
	if res.SRBAC.InfectedBy(5*time.Minute) >= 92 {
		t.Error("S-RBAC fully infected within 5 min; too fast")
	}
	if res.ATRBAC.InfectedBy(10*time.Minute) >= res.SRBAC.InfectedBy(10*time.Minute) {
		t.Error("AT-RBAC not slower than S-RBAC at 10 min")
	}
}

func TestFig5bShape(t *testing.T) {
	res, err := RunFig5b(Fig5bConfig{Seed: 3, Hours: []int{3, 9, 21}})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	byHour := map[int]int{}
	for _, p := range res.Points {
		byHour[p.Hour] = p.Infected
	}
	if byHour[3] != 1 {
		t.Errorf("03:00 foothold infected %d, want isolated (1)", byHour[3])
	}
	if byHour[9] <= byHour[3] {
		t.Errorf("09:00 foothold (%d) not worse than 03:00 (%d)", byHour[9], byHour[3])
	}
	if byHour[21] >= byHour[9] {
		t.Errorf("21:00 foothold (%d) not better than 09:00 (%d)", byHour[21], byHour[9])
	}
	_ = testbed.ConditionATRBAC
}
