//go:build race

package experiments

// raceEnabled mirrors the race build tag for tests whose wall-clock
// calibrated assertions do not hold under race instrumentation slowdown.
const raceEnabled = true
