package experiments

import (
	"testing"
	"time"
)

func TestIncidentResponseQuantifiesSlowdownBenefit(t *testing.T) {
	res, err := RunIncidentResponse(IncidentConfig{Seed: 3, Delays: []time.Duration{5 * time.Minute}})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	get := func(cond int, delay time.Duration) int {
		for _, p := range res.Points {
			if int(p.Condition) == cond && p.Delay == delay {
				return p.Infected
			}
		}
		t.Fatalf("missing point %d/%v", cond, delay)
		return 0
	}
	const (
		baseline = 1
		srbac    = 2
		atrbac   = 3
	)
	// With a 5-minute response, slower policies leave fewer infections:
	// the paper's "more time for incident response" claim, quantified.
	if get(atrbac, 5*time.Minute) >= get(srbac, 5*time.Minute) {
		t.Errorf("AT-RBAC+IR (%d) not better than S-RBAC+IR (%d)",
			get(atrbac, 5*time.Minute), get(srbac, 5*time.Minute))
	}
	// Fast-spreading conditions outrun a 5-minute response entirely: the
	// worm fully infects Baseline (~1 min) and S-RBAC (~15 min via the
	// servers) before isolation matters.
	if get(srbac, 5*time.Minute) > get(baseline, 5*time.Minute) {
		t.Errorf("S-RBAC+IR (%d) worse than Baseline+IR (%d)",
			get(srbac, 5*time.Minute), get(baseline, 5*time.Minute))
	}
	// And AT-RBAC with response must be dramatically better than without:
	// the quantified version of the paper's closing claim.
	if 2*get(atrbac, 5*time.Minute) >= get(atrbac, 0) {
		t.Errorf("IR under AT-RBAC (%d) not a large improvement over none (%d)",
			get(atrbac, 5*time.Minute), get(atrbac, 0))
	}
	// IR always helps vs no IR for the gated policies.
	if get(atrbac, 5*time.Minute) > get(atrbac, 0) {
		t.Errorf("IR made AT-RBAC worse: %d > %d", get(atrbac, 5*time.Minute), get(atrbac, 0))
	}
}
