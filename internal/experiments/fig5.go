package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/dfi-sdn/dfi/internal/testbed"
)

// Fig5aConfig parameterizes the 09:00-foothold infection comparison
// (§V-B Figure 5a).
type Fig5aConfig struct {
	// Seed fixes the testbed population, scripts and worm randomness
	// across all three conditions.
	Seed int64
	// FootholdAt is the infection start, offset from midnight (default
	// 09:00).
	FootholdAt time.Duration
	// Horizon ends the simulation (default 20h, well past every worm
	// lifetime).
	Horizon time.Duration
	// Interval and Span shape the reported timeline (defaults 1 min over
	// 60 min, the paper's first-hour plot).
	Interval time.Duration
	Span     time.Duration
}

func (c *Fig5aConfig) setDefaults() {
	if c.FootholdAt == 0 {
		c.FootholdAt = 9 * time.Hour
	}
	if c.Horizon == 0 {
		c.Horizon = 20 * time.Hour
	}
	if c.Interval == 0 {
		c.Interval = time.Minute
	}
	if c.Span == 0 {
		c.Span = time.Hour
	}
}

// Fig5aResult holds the three infection curves.
type Fig5aResult struct {
	Foothold   string
	FootholdAt time.Duration
	Interval   time.Duration
	Baseline   *testbed.Result
	SRBAC      *testbed.Result
	ATRBAC     *testbed.Result
}

// Render prints the three cumulative-infection series.
func (r *Fig5aResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 5a: Infections over time (foothold %s at %s)\n",
		r.Foothold, clockString(r.FootholdAt))
	fmt.Fprintf(&b, "%-10s %-10s %-10s %-10s\n", "t (min)", "Baseline", "S-RBAC", "AT-RBAC")
	span := time.Hour
	base := r.Baseline.Timeline(r.Interval, span)
	srb := r.SRBAC.Timeline(r.Interval, span)
	atr := r.ATRBAC.Timeline(r.Interval, span)
	for i := range base {
		fmt.Fprintf(&b, "%-10d %-10d %-10d %-10d\n",
			i*int(r.Interval/time.Minute), base[i], srb[i], atr[i])
	}
	fmt.Fprintf(&b, "final:     %-10d %-10d %-10d (of %d)\n",
		len(r.Baseline.Infections), len(r.SRBAC.Infections), len(r.ATRBAC.Infections),
		r.Baseline.TotalHosts)
	return b.String()
}

// RunFig5a runs the worm under all three conditions with identical
// population, scripts and foothold.
func RunFig5a(cfg Fig5aConfig) (*Fig5aResult, error) {
	cfg.setDefaults()
	res := &Fig5aResult{FootholdAt: cfg.FootholdAt, Interval: cfg.Interval}
	for _, cond := range []testbed.Condition{
		testbed.ConditionBaseline, testbed.ConditionSRBAC, testbed.ConditionATRBAC,
	} {
		tb, err := testbed.New(testbed.Config{Condition: cond, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		foothold := tb.FootholdHost(cfg.FootholdAt)
		res.Foothold = foothold
		out, err := tb.RunInfection(foothold, cfg.FootholdAt, cfg.Horizon)
		if err != nil {
			return nil, err
		}
		switch cond {
		case testbed.ConditionBaseline:
			res.Baseline = out
		case testbed.ConditionSRBAC:
			res.SRBAC = out
		case testbed.ConditionATRBAC:
			res.ATRBAC = out
		}
	}
	return res, nil
}

// Fig5bConfig parameterizes the foothold-hour sweep (§V-B Figure 5b).
type Fig5bConfig struct {
	Seed int64
	// Hours are the foothold hours to sweep (default 0–23).
	Hours []int
	// SpanAfter bounds how long after the foothold the simulation runs
	// (default 6h — every worm lifetime has expired long before).
	SpanAfter time.Duration
}

func (c *Fig5bConfig) setDefaults() {
	if len(c.Hours) == 0 {
		for h := 0; h < 24; h++ {
			c.Hours = append(c.Hours, h)
		}
	}
	if c.SpanAfter == 0 {
		c.SpanAfter = 6 * time.Hour
	}
}

// Fig5bPoint is one foothold hour's outcome under AT-RBAC.
type Fig5bPoint struct {
	Hour     int
	Foothold string
	Infected int
	Total    int
}

// Fig5bResult holds the sweep.
type Fig5bResult struct {
	Points []Fig5bPoint
}

// Render prints infections per foothold hour.
func (r *Fig5bResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 5b: AT-RBAC infections by foothold hour\n")
	fmt.Fprintf(&b, "%-8s %-12s %-10s\n", "hour", "foothold", "infected")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%02d:00    %-12s %d/%d\n", p.Hour, p.Foothold, p.Infected, p.Total)
	}
	return b.String()
}

// RunFig5b sweeps the foothold hour under AT-RBAC.
func RunFig5b(cfg Fig5bConfig) (*Fig5bResult, error) {
	cfg.setDefaults()
	res := &Fig5bResult{}
	for _, hour := range cfg.Hours {
		tb, err := testbed.New(testbed.Config{Condition: testbed.ConditionATRBAC, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		at := time.Duration(hour) * time.Hour
		foothold := tb.FootholdHost(at)
		out, err := tb.RunInfection(foothold, at, at+cfg.SpanAfter)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig5bPoint{
			Hour:     hour,
			Foothold: foothold,
			Infected: len(out.Infections),
			Total:    out.TotalHosts,
		})
	}
	return res, nil
}

func clockString(d time.Duration) string {
	return fmt.Sprintf("%02d:%02d", int(d.Hours()), int(d.Minutes())%60)
}
