package experiments

import (
	"fmt"
	"strings"
	"time"
)

// TSV renderers: one tab-separated table per experiment, for plotting the
// figures with external tools (dfi-bench -o <dir> writes these).

// TSV renders Table I.
func (r *Table1Result) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metric\tmean\tstddev\tunit\n")
	fmt.Fprintf(&b, "latency\t%.4f\t%.4f\tms\n",
		ms(r.Latency.Mean), ms(r.Latency.StdDev))
	fmt.Fprintf(&b, "throughput\t%.1f\t%.1f\tflows/sec\n",
		r.ThroughputMean, r.ThroughputStdDev)
	return b.String()
}

// TSV renders Table II.
func (r *Table2Result) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "component\tmean_ms\tstddev_ms\n")
	rows := []struct {
		name string
		row  StatRow
	}{
		{name: "binding_query", row: r.BindingQuery},
		{name: "policy_query", row: r.PolicyQuery},
		{name: "other_pcp", row: r.OtherPCP},
		{name: "proxy", row: r.Proxy},
		{name: "overall", row: r.Overall},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%s\t%.4f\t%.4f\n", row.name, ms(row.row.Mean), ms(row.row.StdDev))
	}
	return b.String()
}

// TSV renders Figure 4's two series.
func (r *Fig4Result) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rate_fps\twith_dfi_ms\twith_dfi_std_ms\twith_dfi_timeouts\twithout_dfi_ms\twithout_dfi_std_ms\twithout_dfi_timeouts\n")
	for i := range r.WithDFI {
		with := r.WithDFI[i]
		var without Fig4Point
		if i < len(r.WithoutDFI) {
			without = r.WithoutDFI[i]
		}
		fmt.Fprintf(&b, "%d\t%.4f\t%.4f\t%d\t%.4f\t%.4f\t%d\n",
			with.Rate,
			ms(with.TTFB.Mean), ms(with.TTFB.StdDev), with.Timeouts,
			ms(without.TTFB.Mean), ms(without.TTFB.StdDev), without.Timeouts)
	}
	return b.String()
}

// TSV renders Figure 5a's three cumulative series (first hour by minute).
func (r *Fig5aResult) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "minute\tbaseline\tsrbac\tatrbac\ttotal_hosts\n")
	span := time.Hour
	base := r.Baseline.Timeline(r.Interval, span)
	srb := r.SRBAC.Timeline(r.Interval, span)
	atr := r.ATRBAC.Timeline(r.Interval, span)
	for i := range base {
		fmt.Fprintf(&b, "%d\t%d\t%d\t%d\t%d\n",
			i*int(r.Interval/time.Minute), base[i], srb[i], atr[i], r.Baseline.TotalHosts)
	}
	return b.String()
}

// TSV renders Figure 5b.
func (r *Fig5bResult) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hour\tinfected\ttotal\tfoothold\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%d\t%d\t%d\t%s\n", p.Hour, p.Infected, p.Total, p.Foothold)
	}
	return b.String()
}

// TSV renders the incident-response extension sweep.
func (r *IncidentResult) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "condition\tresponse_delay_s\tinfected\ttotal\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%s\t%.0f\t%d\t%d\n", p.Condition, p.Delay.Seconds(), p.Infected, p.Total)
	}
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
