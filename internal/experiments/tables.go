package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/cbench"
)

// MicrobenchConfig parameterizes the Table I / Table II runs.
type MicrobenchConfig struct {
	// Flows is the latency-mode sample count (default 200).
	Flows int
	// Trials is the number of throughput-mode trials (default 3; the
	// paper reports ±39 flows/sec across trials).
	Trials int
	// TrialDuration is each throughput trial's length (default 2s).
	TrialDuration time.Duration
	// OfferedRate floods the control plane in throughput mode (default
	// 5000 flows/sec, well past saturation).
	OfferedRate int
	// Calibrated applies the paper's measured latency profile; without it
	// the benchmark reports this implementation's native speed.
	Calibrated bool
	// Seed drives fuzzing and latency sampling.
	Seed int64
	// QueueDepth/Workers configure the PCP (defaults 512/8; 8 workers ×
	// 5.73 ms/flow ≈ the paper's 1350 flows/sec saturation).
	QueueDepth int
	Workers    int
}

func (c *MicrobenchConfig) setDefaults() {
	if c.Flows <= 0 {
		c.Flows = 200
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.TrialDuration <= 0 {
		c.TrialDuration = 2 * time.Second
	}
	if c.OfferedRate <= 0 {
		c.OfferedRate = 5000
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 512
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
}

// Table1Result reproduces "Table I: DFI Performance Microbenchmarks".
type Table1Result struct {
	Latency           StatRow
	ThroughputMean    float64 // flows/sec at saturation
	ThroughputStdDev  float64
	LatencySamples    uint64
	ThroughputSamples int
}

// Render prints the table in the paper's row format.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I: DFI Performance Microbenchmarks\n")
	fmt.Fprintf(&b, "%-32s %s\n", "Metric", "Mean ± Std. Dev.")
	fmt.Fprintf(&b, "%-32s %s\n", "Latency (under no load)", r.Latency)
	fmt.Fprintf(&b, "%-32s %.0f flows/sec ± %.0f flows/sec\n",
		"Throughput (at saturation)", r.ThroughputMean, r.ThroughputStdDev)
	return b.String()
}

// RunTable1 measures DFI's flow-start latency under no load and its
// saturation throughput using the cbench emulator, exactly as §V-A does.
func RunTable1(cfg MicrobenchConfig) (*Table1Result, error) {
	cfg.setDefaults()

	// Latency under no load: a dedicated rig with a serial bench.
	r, err := newRig(cfg.Calibrated, cfg.Seed, cfg.QueueDepth, cfg.Workers)
	if err != nil {
		return nil, err
	}
	defer r.close()
	swEnd, cpEnd := bufpipe.New()
	go func() { _ = r.sys.ServeSwitch(cpEnd) }()
	bench, err := cbench.New(swEnd, cbench.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if err := bench.WaitReady(5 * time.Second); err != nil {
		return nil, err
	}
	lat, err := bench.Latency(cfg.Flows)
	if err != nil {
		return nil, fmt.Errorf("latency mode: %w", err)
	}

	// Throughput at saturation: fresh rigs per trial so drops from one
	// trial do not linger in the next.
	var rates []float64
	for trial := 0; trial < cfg.Trials; trial++ {
		rt, err := newRig(cfg.Calibrated, cfg.Seed+int64(trial)+1, cfg.QueueDepth, cfg.Workers)
		if err != nil {
			return nil, err
		}
		tSwEnd, tCpEnd := bufpipe.New()
		go func() { _ = rt.sys.ServeSwitch(tCpEnd) }()
		tb, err := cbench.New(tSwEnd, cbench.Config{Seed: cfg.Seed + int64(trial) + 1})
		if err != nil {
			rt.close()
			return nil, err
		}
		if err := tb.WaitReady(5 * time.Second); err != nil {
			rt.close()
			return nil, err
		}
		rate, err := tb.Throughput(cfg.TrialDuration, cfg.OfferedRate)
		rt.close()
		if err != nil {
			return nil, fmt.Errorf("throughput trial %d: %w", trial, err)
		}
		rates = append(rates, rate)
	}
	mean, std := meanStd(rates)

	return &Table1Result{
		Latency:           StatRow{Mean: lat.Mean(), StdDev: lat.StdDev()},
		ThroughputMean:    mean,
		ThroughputStdDev:  std,
		LatencySamples:    lat.N(),
		ThroughputSamples: cfg.Trials,
	}, nil
}

// Table2Result reproduces "Table II: Latency Breakdown".
type Table2Result struct {
	BindingQuery StatRow
	PolicyQuery  StatRow
	OtherPCP     StatRow
	Proxy        StatRow
	Overall      StatRow
}

// Render prints the table in the paper's row format.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II: Latency Breakdown\n")
	fmt.Fprintf(&b, "%-28s %s\n", "Component", "Mean Latency ± Std. Dev.")
	fmt.Fprintf(&b, "%-28s %s\n", "Binding Query", r.BindingQuery)
	fmt.Fprintf(&b, "%-28s %s\n", "Policy Query", r.PolicyQuery)
	fmt.Fprintf(&b, "%-28s %s\n", "Other PCP Processing", r.OtherPCP)
	fmt.Fprintf(&b, "%-28s %s\n", "Proxy", r.Proxy)
	fmt.Fprintf(&b, "%-28s %s\n", "Overall", r.Overall)
	return b.String()
}

// RunTable2 measures the per-flow time spent in each DFI subtask using the
// PCP's stage instrumentation during a latency-mode run.
func RunTable2(cfg MicrobenchConfig) (*Table2Result, error) {
	cfg.setDefaults()
	r, err := newRig(cfg.Calibrated, cfg.Seed, cfg.QueueDepth, cfg.Workers)
	if err != nil {
		return nil, err
	}
	defer r.close()
	swEnd, cpEnd := bufpipe.New()
	go func() { _ = r.sys.ServeSwitch(cpEnd) }()
	bench, err := cbench.New(swEnd, cbench.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if err := bench.WaitReady(5 * time.Second); err != nil {
		return nil, err
	}
	lat, err := bench.Latency(cfg.Flows)
	if err != nil {
		return nil, fmt.Errorf("latency mode: %w", err)
	}
	m := r.sys.PCP().Metrics()
	overhead := r.sys.Proxy().Overhead()
	return &Table2Result{
		BindingQuery: StatRow{Mean: m.BindingQuery.Mean(), StdDev: m.BindingQuery.StdDev()},
		PolicyQuery:  StatRow{Mean: m.PolicyQuery.Mean(), StdDev: m.PolicyQuery.StdDev()},
		OtherPCP:     StatRow{Mean: m.OtherPCP.Mean(), StdDev: m.OtherPCP.StdDev()},
		Proxy:        StatRow{Mean: overhead.Mean(), StdDev: overhead.StdDev()},
		Overall:      StatRow{Mean: lat.Mean(), StdDev: lat.StdDev()},
	}, nil
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}
