package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/harness"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

// Fig4Config parameterizes the TTFB-vs-load experiment (§V-A Figure 4).
type Fig4Config struct {
	// Rates are the background new-flow arrival rates (flows/sec) to
	// sweep (default 0–1000 step 100).
	Rates []int
	// Samples is the TTFB measurement count per rate (default 25).
	Samples int
	// Calibrated applies the paper's latency profile to DFI and an
	// ONOS-like reactive-forwarding cost to the controller.
	Calibrated bool
	// Seed drives background fuzzing.
	Seed int64
	// RTO is the client's SYN retransmission timeout (default 200 ms) —
	// dropped flows re-enter the control plane on retransmission, which
	// is what makes the paper's mean TTFB plateau around 200 ms past
	// saturation.
	RTO time.Duration
	// FlowTimeout gives up on a connection (default 2 s); timed-out
	// samples contribute FlowTimeout to the mean, as a user would
	// experience.
	FlowTimeout time.Duration
}

func (c *Fig4Config) setDefaults() {
	if len(c.Rates) == 0 {
		for r := 0; r <= 1000; r += 100 {
			c.Rates = append(c.Rates, r)
		}
	}
	if c.Samples <= 0 {
		c.Samples = 25
	}
	if c.RTO <= 0 {
		c.RTO = 200 * time.Millisecond
	}
	if c.FlowTimeout <= 0 {
		c.FlowTimeout = 2 * time.Second
	}
}

// Fig4Point is one point of one curve.
type Fig4Point struct {
	Rate     int
	TTFB     StatRow
	Timeouts int
}

// Fig4Result holds both curves of Figure 4.
type Fig4Result struct {
	WithDFI    []Fig4Point
	WithoutDFI []Fig4Point
}

// Render prints the two series as aligned columns.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 4: Time to First Byte (TTFB) vs. flow arrival rate\n")
	fmt.Fprintf(&b, "%-12s %-26s %-26s\n", "flows/sec", "TTFB with DFI", "TTFB without DFI")
	for i := range r.WithDFI {
		with := r.WithDFI[i]
		var without Fig4Point
		if i < len(r.WithoutDFI) {
			without = r.WithoutDFI[i]
		}
		fmt.Fprintf(&b, "%-12d %-26s %-26s\n", with.Rate, with.TTFB, without.TTFB)
	}
	return b.String()
}

// RunFig4 sweeps background load for both conditions.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	cfg.setDefaults()
	res := &Fig4Result{}
	for _, rate := range cfg.Rates {
		p, err := runFig4Point(cfg, rate, true)
		if err != nil {
			return nil, fmt.Errorf("fig4 with DFI @%d: %w", rate, err)
		}
		res.WithDFI = append(res.WithDFI, p)
	}
	for _, rate := range cfg.Rates {
		p, err := runFig4Point(cfg, rate, false)
		if err != nil {
			return nil, fmt.Errorf("fig4 without DFI @%d: %w", rate, err)
		}
		res.WithoutDFI = append(res.WithoutDFI, p)
	}
	return res, nil
}

// fig4Host is the measurement client/responder pair's addressing.
var (
	fig4MACA = netpkt.MustParseMAC("02:f4:00:00:00:0a")
	fig4MACB = netpkt.MustParseMAC("02:f4:00:00:00:0b")
	fig4IPA  = netpkt.MustParseIPv4("10.99.0.10")
	fig4IPB  = netpkt.MustParseIPv4("10.99.0.11")
)

func runFig4Point(cfg Fig4Config, rate int, withDFI bool) (Fig4Point, error) {
	sw := switchsim.NewSwitch(switchsim.Config{DPID: 1, TableCapacity: 1 << 16})

	// Control plane: either DFI fronting the controller, or the
	// controller alone.
	var closeCP func()
	swEnd, cpEnd := bufpipe.New()
	go func() { _ = sw.ServeControl(swEnd) }()
	if withDFI {
		// Capacity tuned to the paper's Figure 4: saturation begins near
		// 700–800 flows/sec, and the bounded queue caps queueing delay so
		// the post-saturation mean plateaus around 200 ms (drops + SYN
		// retransmission re-entry).
		r, err := newRig(cfg.Calibrated, cfg.Seed, 128, 4)
		if err != nil {
			return Fig4Point{}, err
		}
		if err := r.installAllowAll(); err != nil {
			r.close()
			return Fig4Point{}, err
		}
		go func() { _ = r.sys.ServeSwitch(cpEnd) }()
		closeCP = r.close
	} else {
		var ctlLatency = controllerLatency(cfg.Seed + 100)
		if !cfg.Calibrated {
			ctlLatency = nil
		}
		ctl := controller.New(controller.Config{
			Clock:             simclock.Real{},
			ProcessingLatency: ctlLatency,
			MaxConcurrent:     256,
		})
		go func() { _ = ctl.Serve(cpEnd) }()
		closeCP = func() {}
	}
	defer func() {
		swEnd.Close()
		cpEnd.Close()
		closeCP()
	}()
	if !sw.WaitConfigured(5 * time.Second) {
		return Fig4Point{}, fmt.Errorf("switch never configured")
	}

	// Client A (port 1) with per-destination-port waiters.
	var waiters sync.Map // uint16 (A's src port) -> chan struct{}
	if err := sw.AttachPort(1, func(frame []byte) {
		k, err := netpkt.ExtractFlowKey(frame)
		if err != nil || !k.HasL4 || k.IPProto != netpkt.ProtoTCP {
			return
		}
		if ch, ok := waiters.Load(k.L4Dst); ok {
			select {
			case ch.(chan struct{}) <- struct{}{}:
			default:
			}
		}
	}); err != nil {
		return Fig4Point{}, err
	}

	// Responder B (port 2): SYN-ACKs every SYN addressed to it.
	if err := sw.AttachPort(2, func(frame []byte) {
		k, err := netpkt.ExtractFlowKey(frame)
		if err != nil || !k.HasL4 || k.IPProto != netpkt.ProtoTCP || k.EthDst != fig4MACB {
			return
		}
		synAck := netpkt.BuildTCP(fig4MACB, k.EthSrc, fig4IPB, k.IPSrc, &netpkt.TCPSegment{
			SrcPort: k.L4Dst, DstPort: k.L4Src,
			Flags: netpkt.TCPSyn | netpkt.TCPAck,
		})
		go sw.Inject(2, synAck)
	}); err != nil {
		return Fig4Point{}, err
	}

	// Background sinks.
	for port := uint32(3); port <= 6; port++ {
		if err := sw.AttachPort(port, func([]byte) {}); err != nil {
			return Fig4Point{}, err
		}
	}

	// Background traffic: randomized Ethernet flows at the target rate.
	stopBG := make(chan struct{})
	var bgWG sync.WaitGroup
	if rate > 0 {
		bgWG.Add(1)
		go func() {
			defer bgWG.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rate)))
			const tick = 5 * time.Millisecond
			perTick := float64(rate) * tick.Seconds()
			carry := 0.0
			ticker := time.NewTicker(tick)
			defer ticker.Stop()
			for {
				select {
				case <-stopBG:
					return
				case <-ticker.C:
					carry += perTick
					for ; carry >= 1; carry-- {
						var src, dst netpkt.MAC
						src[0], dst[0] = 0x02, 0x02
						for i := 1; i < 6; i++ {
							src[i] = byte(rng.Intn(256))
							dst[i] = byte(rng.Intn(256))
						}
						frame := netpkt.BuildTCP(src, dst,
							netpkt.IPv4FromUint32(0x0a600000|uint32(rng.Intn(1<<16))),
							netpkt.IPv4FromUint32(0x0a610000|uint32(rng.Intn(1<<16))),
							&netpkt.TCPSegment{
								SrcPort: uint16(1024 + rng.Intn(60000)),
								DstPort: uint16(1 + rng.Intn(1024)),
								Flags:   netpkt.TCPSyn,
							})
						sw.Inject(3, frame)
					}
				}
			}
		}()
	}
	defer func() {
		close(stopBG)
		bgWG.Wait()
	}()

	time.Sleep(300 * time.Millisecond) // warm-up under load

	stats := &harness.DurationStats{}
	timeouts := 0
	for i := 0; i < cfg.Samples; i++ {
		srcPort := uint16(20000 + i)
		ch := make(chan struct{}, 1)
		waiters.Store(srcPort, ch)
		ttfb, ok := connectOnce(sw, srcPort, ch, cfg.RTO, cfg.FlowTimeout)
		waiters.Delete(srcPort)
		stats.Add(ttfb)
		if !ok {
			timeouts++
		}
		time.Sleep(20 * time.Millisecond)
	}
	return Fig4Point{
		Rate:     rate,
		TTFB:     StatRow{Mean: stats.Mean(), StdDev: stats.StdDev()},
		Timeouts: timeouts,
	}, nil
}

// connectOnce sends a SYN (retransmitting on RTO) and waits for the
// SYN-ACK, returning the time to first byte.
func connectOnce(sw *switchsim.Switch, srcPort uint16, ch chan struct{}, rto, timeout time.Duration) (time.Duration, bool) {
	syn := netpkt.BuildTCP(fig4MACA, fig4MACB, fig4IPA, fig4IPB, &netpkt.TCPSegment{
		SrcPort: srcPort, DstPort: 80, Flags: netpkt.TCPSyn,
	})
	start := time.Now()
	deadline := start.Add(timeout)
	for {
		sw.Inject(1, syn)
		wait := rto
		if remain := time.Until(deadline); remain < wait {
			wait = remain
		}
		if wait <= 0 {
			return timeout, false
		}
		select {
		case <-ch:
			return time.Since(start), true
		case <-time.After(wait):
			if !time.Now().Before(deadline) {
				return timeout, false
			}
		}
	}
}
