package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/dfi-sdn/dfi/internal/testbed"
)

// IncidentConfig parameterizes the incident-response extension experiment:
// the paper's conclusion argues that AT-RBAC's slowdown "could provide
// additional time for an incident response team to be notified and isolate
// infected hosts" (§V-B). Here that team is modeled by the Quarantine PDP
// isolating each infected host a fixed delay after compromise, and the
// claim is quantified across policy conditions.
type IncidentConfig struct {
	Seed int64
	// Delays are the detection-to-isolation times to sweep (default
	// 2, 5 and 15 minutes).
	Delays []time.Duration
	// FootholdAt is the infection start (default 09:00).
	FootholdAt time.Duration
}

func (c *IncidentConfig) setDefaults() {
	if len(c.Delays) == 0 {
		c.Delays = []time.Duration{2 * time.Minute, 5 * time.Minute, 15 * time.Minute}
	}
	if c.FootholdAt == 0 {
		c.FootholdAt = 9 * time.Hour
	}
}

// IncidentPoint is one condition × response-delay outcome.
type IncidentPoint struct {
	Condition testbed.Condition
	Delay     time.Duration // 0 = no incident response
	Infected  int
	Total     int
}

// IncidentResult holds the sweep.
type IncidentResult struct {
	Points []IncidentPoint
}

// Render prints a conditions × delays table of final infections.
func (r *IncidentResult) Render() string {
	delays := []time.Duration{}
	seen := map[time.Duration]bool{}
	for _, p := range r.Points {
		if !seen[p.Delay] {
			seen[p.Delay] = true
			delays = append(delays, p.Delay)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "EXTENSION: final infections with incident response (quarantine N after compromise)\n")
	fmt.Fprintf(&b, "%-12s", "condition")
	for _, d := range delays {
		label := "no IR"
		if d > 0 {
			label = "IR " + d.String()
		}
		fmt.Fprintf(&b, " %-10s", label)
	}
	b.WriteByte('\n')
	for _, cond := range []testbed.Condition{
		testbed.ConditionBaseline, testbed.ConditionSRBAC, testbed.ConditionATRBAC,
	} {
		fmt.Fprintf(&b, "%-12s", cond)
		for _, d := range delays {
			for _, p := range r.Points {
				if p.Condition == cond && p.Delay == d {
					fmt.Fprintf(&b, " %-10s", fmt.Sprintf("%d/%d", p.Infected, p.Total))
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RunIncidentResponse sweeps response delay × policy condition.
func RunIncidentResponse(cfg IncidentConfig) (*IncidentResult, error) {
	cfg.setDefaults()
	delays := append([]time.Duration{0}, cfg.Delays...)
	res := &IncidentResult{}
	for _, cond := range []testbed.Condition{
		testbed.ConditionBaseline, testbed.ConditionSRBAC, testbed.ConditionATRBAC,
	} {
		for _, delay := range delays {
			tb, err := testbed.New(testbed.Config{
				Condition:       cond,
				Seed:            cfg.Seed,
				QuarantineDelay: delay,
			})
			if err != nil {
				return nil, err
			}
			foothold := tb.FootholdHost(cfg.FootholdAt)
			out, err := tb.RunInfection(foothold, cfg.FootholdAt, cfg.FootholdAt+8*time.Hour)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, IncidentPoint{
				Condition: cond,
				Delay:     delay,
				Infected:  len(out.Infections),
				Total:     out.TotalHosts,
			})
		}
	}
	return res, nil
}
