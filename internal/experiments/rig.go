// Package experiments regenerates every table and figure in the paper's
// evaluation (§V): Table I (DFI latency/throughput microbenchmarks),
// Table II (per-stage latency breakdown), Figure 4 (time-to-first-byte vs.
// flow arrival rate, with and without DFI) and Figures 5a/5b (NotPetya
// surrogate infections under Baseline / S-RBAC / AT-RBAC).
package experiments

import (
	"fmt"
	"io"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/core/pdp"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

// StatRow is one mean ± σ table cell.
type StatRow struct {
	Mean   time.Duration
	StdDev time.Duration
}

// String renders the row in the paper's "X.XXms ± Y.YYms" format.
func (r StatRow) String() string {
	return fmt.Sprintf("%.2fms ± %.2fms",
		float64(r.Mean)/float64(time.Millisecond),
		float64(r.StdDev)/float64(time.Millisecond))
}

// rig is a wired control plane under test: a DFI System fronting a
// reactive controller, plus lifecycle plumbing.
type rig struct {
	sys *dfi.System
	ctl *controller.Controller
}

// controllerLatency approximates ONOS's reactive-forwarding compute cost on
// the paper's testbed: without DFI the paper measures a near-constant
// 4–6 ms TTFB across both flow directions, i.e. ≈2.3 ms per direction.
func controllerLatency(seed int64) store.LatencyModel {
	return store.NewGaussian(2300*time.Microsecond, 500*time.Microsecond, seed)
}

// newRig builds the DFI control plane. calibrated=true applies the paper's
// measured per-stage latency profile (Table II); false leaves all stages at
// native speed.
func newRig(calibrated bool, seed int64, queueDepth, workers int) (*rig, error) {
	ctl := controller.New(controller.Config{
		Clock:             simclock.Real{},
		ProcessingLatency: controllerLatency(seed + 100),
		MaxConcurrent:     256,
	})
	opts := []dfi.Option{
		dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
			a, b := bufpipe.New()
			go func() { _ = ctl.Serve(b) }()
			return a, nil
		}),
		dfi.WithAdmissionQueue(queueDepth, workers),
	}
	if calibrated {
		binding, policyQ, pcpProc, proxyFwd := dfi.PaperLatencyProfile(seed)
		opts = append(opts, dfi.WithLatencyProfile(binding, policyQ, pcpProc, proxyFwd))
	}
	sys, err := dfi.New(opts...)
	if err != nil {
		return nil, err
	}
	return &rig{sys: sys, ctl: ctl}, nil
}

func (r *rig) close() { r.sys.Close() }

// installAllowAll opens the policy fully (the permissive state for the
// performance experiments, which measure mechanism cost, not policy).
func (r *rig) installAllowAll() error {
	allowAll, err := pdp.NewAllowAll(r.sys.Policy())
	if err != nil {
		return err
	}
	return allowAll.Enable()
}
