package cbench

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

// fakeControlPlane answers the OpenFlow handshake and replies to every
// packet-in with a flow-mod after an optional delay.
type fakeControlPlane struct {
	conn     *openflow.Conn
	delay    time.Duration
	seenDPID atomic.Uint64
	flows    atomic.Uint64
	unique   map[string]struct{}
}

func startFake(t *testing.T, rw *bufpipe.Conn, delay time.Duration) *fakeControlPlane {
	t.Helper()
	f := &fakeControlPlane{
		conn:   openflow.NewConn(rw),
		delay:  delay,
		unique: make(map[string]struct{}),
	}
	go f.serve()
	return f
}

func (f *fakeControlPlane) serve() {
	if _, err := f.conn.Send(&openflow.Hello{}); err != nil {
		return
	}
	if _, err := f.conn.Send(&openflow.FeaturesRequest{}); err != nil {
		return
	}
	for {
		_, msg, err := f.conn.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *openflow.FeaturesReply:
			f.seenDPID.Store(m.DatapathID)
			if _, err := f.conn.Send(&openflow.SetConfig{MissSendLen: 0xffff}); err != nil {
				return
			}
		case *openflow.PacketIn:
			go func(pi *openflow.PacketIn) {
				if f.delay > 0 {
					time.Sleep(f.delay)
				}
				key, err := netpkt.ExtractFlowKey(pi.Data)
				if err != nil {
					return
				}
				f.flows.Add(1)
				fm := &openflow.FlowMod{
					TableID: 0, Command: openflow.FlowModAdd,
					BufferID: openflow.NoBuffer,
					Match:    openflow.ExactMatchFor(key, pi.InPort()),
				}
				_, _ = f.conn.Send(fm)
			}(m)
		}
	}
}

func TestHandshakeAndReady(t *testing.T) {
	swEnd, cpEnd := bufpipe.New()
	fake := startFake(t, cpEnd, 0)
	bench, err := New(swEnd, Config{DPID: 0x77, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := fake.seenDPID.Load(); got != 0x77 {
		t.Fatalf("control plane saw dpid %#x", got)
	}
}

func TestLatencyMode(t *testing.T) {
	swEnd, cpEnd := bufpipe.New()
	startFake(t, cpEnd, 2*time.Millisecond)
	bench, err := New(swEnd, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats, err := bench.Latency(20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.N() != 20 {
		t.Fatalf("samples = %d", stats.N())
	}
	if stats.Mean() < 2*time.Millisecond {
		t.Fatalf("mean %v below the control plane's 2ms cost", stats.Mean())
	}
	if stats.Mean() > 50*time.Millisecond {
		t.Fatalf("mean %v implausibly high", stats.Mean())
	}
}

func TestLatencyTimeoutOnSilentControlPlane(t *testing.T) {
	swEnd, _ := bufpipe.New() // nobody answers
	bench, err := New(swEnd, Config{Seed: 1, ResponseTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bench.Latency(1); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestThroughputMode(t *testing.T) {
	swEnd, cpEnd := bufpipe.New()
	fake := startFake(t, cpEnd, 0)
	bench, err := New(swEnd, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	rate, err := bench.Throughput(500*time.Millisecond, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 500 {
		t.Fatalf("completed rate = %.0f flows/sec, want ≥500 with a free control plane", rate)
	}
	if fake.flows.Load() == 0 {
		t.Fatal("control plane processed nothing")
	}
}

func TestFuzzedHeadersAreUniqueFlows(t *testing.T) {
	b := &Bench{cfg: Config{Ports: 48}, rng: newTestRNG()}
	seen := make(map[string]struct{})
	for i := 0; i < 200; i++ {
		pi := b.fuzzPacketIn()
		key, err := netpkt.ExtractFlowKey(pi.Data)
		if err != nil {
			t.Fatal(err)
		}
		seen[key.String()] = struct{}{}
		if pi.InPort() == openflow.PortAny || pi.InPort() == 0 || pi.InPort() > 48 {
			t.Fatalf("bad in-port %d", pi.InPort())
		}
	}
	if len(seen) < 195 {
		t.Fatalf("only %d/200 unique fuzzed flows", len(seen))
	}
}

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(7)) }
