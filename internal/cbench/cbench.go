// Package cbench reimplements the cbench OpenFlow controller benchmark
// (modified for OpenFlow 1.3, as the paper did): it emulates a switch,
// floods the control plane with packet-ins carrying randomized headers,
// and measures flow-setup latency (serial request/response) or maximum
// throughput (open-loop offered load vs. completed responses). It
// regenerates the paper's Table I microbenchmarks against the DFI control
// plane.
package cbench

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dfi-sdn/dfi/internal/harness"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

// Config parameterizes a Bench.
type Config struct {
	// DPID is the emulated switch's datapath id (default 0xbe).
	DPID uint64
	// Ports is the emulated port count for randomized in-ports (default 48).
	Ports int
	// Seed drives header fuzzing.
	Seed int64
	// ResponseTimeout bounds the wait for a response in latency mode
	// (default 5s).
	ResponseTimeout time.Duration
}

// Bench is one emulated switch connected to the control plane under test.
type Bench struct {
	cfg  Config
	conn *openflow.Conn
	rng  *rand.Rand

	responses atomic.Uint64
	respCh    chan struct{}
	readErr   atomic.Value // error
	done      chan struct{}
	ready     chan struct{}
	readyOnce sync.Once
}

// New wires a bench to the control-plane side of rw and completes the
// switch-side OpenFlow handshake (HELLO, FEATURES, config). It starts a
// reader goroutine that counts every flow-mod response; Close the stream to
// stop it.
func New(rw io.ReadWriter, cfg Config) (*Bench, error) {
	if cfg.DPID == 0 {
		cfg.DPID = 0xbe
	}
	if cfg.Ports <= 0 {
		cfg.Ports = 48
	}
	if cfg.ResponseTimeout <= 0 {
		cfg.ResponseTimeout = 5 * time.Second
	}
	b := &Bench{
		cfg:    cfg,
		conn:   openflow.NewConn(rw),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		respCh: make(chan struct{}, 1<<16),
		done:   make(chan struct{}),
		ready:  make(chan struct{}),
	}
	if _, err := b.conn.Send(&openflow.Hello{}); err != nil {
		return nil, fmt.Errorf("cbench: hello: %w", err)
	}
	go b.reader()
	return b, nil
}

// reader answers handshake traffic and counts flow-mod responses.
func (b *Bench) reader() {
	defer close(b.done)
	for {
		xid, msg, err := b.conn.Recv()
		if err != nil {
			b.readErr.Store(err)
			return
		}
		switch m := msg.(type) {
		case *openflow.FeaturesRequest:
			err = b.conn.SendXID(xid, &openflow.FeaturesReply{
				DatapathID: b.cfg.DPID,
				NumTables:  8,
			})
		case *openflow.EchoRequest:
			err = b.conn.SendXID(xid, &openflow.EchoReply{Data: m.Data})
		case *openflow.GetConfigRequest:
			err = b.conn.SendXID(xid, &openflow.GetConfigReply{MissSendLen: 0xffff})
		case *openflow.FlowMod:
			b.responses.Add(1)
			select {
			case b.respCh <- struct{}{}:
			default:
			}
		case *openflow.SetConfig:
			// Reactive controllers send SET_CONFIG once their handshake
			// completes; the control plane is ready for packet-ins.
			b.readyOnce.Do(func() { close(b.ready) })
		default:
			// Packet-outs and barriers need no action.
		}
		if err != nil {
			b.readErr.Store(err)
			return
		}
	}
}

// WaitReady blocks until the control plane completed its handshake (sent
// SET_CONFIG) or the timeout elapses. Packet-ins sent before readiness may
// be dropped by the control plane.
func (b *Bench) WaitReady(timeout time.Duration) error {
	select {
	case <-b.ready:
		return nil
	case <-b.done:
		if err, ok := b.readErr.Load().(error); ok {
			return fmt.Errorf("cbench: reader: %w", err)
		}
		return errors.New("cbench: connection closed before ready")
	case <-time.After(timeout):
		return errors.New("cbench: control plane never became ready")
	}
}

// Responses returns the number of flow-mod responses seen so far.
func (b *Bench) Responses() uint64 { return b.responses.Load() }

// fuzzPacketIn builds a packet-in whose header fields are randomized, as
// cbench does, so every request is a new flow.
func (b *Bench) fuzzPacketIn() *openflow.PacketIn {
	var srcMAC, dstMAC netpkt.MAC
	srcMAC[0], dstMAC[0] = 0x02, 0x02
	for i := 1; i < 6; i++ {
		srcMAC[i] = byte(b.rng.Intn(256))
		dstMAC[i] = byte(b.rng.Intn(256))
	}
	srcIP := netpkt.IPv4FromUint32(0x0a000000 | uint32(b.rng.Intn(1<<24)))
	dstIP := netpkt.IPv4FromUint32(0x0a000000 | uint32(b.rng.Intn(1<<24)))
	frame := netpkt.BuildTCP(srcMAC, dstMAC, srcIP, dstIP, &netpkt.TCPSegment{
		SrcPort: uint16(1024 + b.rng.Intn(60000)),
		DstPort: uint16(1 + b.rng.Intn(1024)),
		Flags:   netpkt.TCPSyn,
	})
	inPort := uint32(1 + b.rng.Intn(b.cfg.Ports))
	return &openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		Reason:   openflow.PacketInReasonNoMatch,
		TableID:  0,
		Match:    &openflow.Match{InPort: openflow.U32(inPort)},
		Data:     frame,
	}
}

// drainResponses empties the response channel.
func (b *Bench) drainResponses() {
	for {
		select {
		case <-b.respCh:
		default:
			return
		}
	}
}

// ErrTimeout reports a missing response in latency mode.
var ErrTimeout = errors.New("cbench: response timeout")

// Latency measures serial flow-setup latency over n new flows: each
// packet-in is sent only after the previous flow's rule came back (cbench
// latency mode). It returns per-flow statistics.
func (b *Bench) Latency(n int) (*harness.DurationStats, error) {
	stats := &harness.DurationStats{}
	timer := time.NewTimer(b.cfg.ResponseTimeout)
	defer timer.Stop()
	for i := 0; i < n; i++ {
		b.drainResponses()
		start := time.Now()
		if _, err := b.conn.Send(b.fuzzPacketIn()); err != nil {
			return stats, fmt.Errorf("cbench: send: %w", err)
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(b.cfg.ResponseTimeout)
		select {
		case <-b.respCh:
			stats.Add(time.Since(start))
		case <-b.done:
			if err, ok := b.readErr.Load().(error); ok {
				return stats, fmt.Errorf("cbench: reader: %w", err)
			}
			return stats, ErrTimeout
		case <-timer.C:
			return stats, fmt.Errorf("%w: flow %d", ErrTimeout, i)
		}
	}
	return stats, nil
}

// Throughput offers load at the given rate (flows/sec) for the duration and
// returns the completed-response rate — the control plane's saturation
// throughput when the offered rate exceeds capacity (cbench throughput
// mode). Offered rate ≤ 0 means "as fast as possible" (paced at 1 MHz).
func (b *Bench) Throughput(duration time.Duration, offeredRate int) (float64, error) {
	if offeredRate <= 0 {
		offeredRate = 1_000_000
	}
	interval := time.Second / time.Duration(offeredRate)
	startResponses := b.Responses()
	start := time.Now()
	next := start
	for time.Since(start) < duration {
		if err, ok := b.readErr.Load().(error); ok {
			return 0, fmt.Errorf("cbench: reader: %w", err)
		}
		if _, err := b.conn.Send(b.fuzzPacketIn()); err != nil {
			return 0, fmt.Errorf("cbench: send: %w", err)
		}
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	// Allow queued work to complete before counting.
	time.Sleep(100 * time.Millisecond)
	elapsed := time.Since(start).Seconds()
	completed := b.Responses() - startResponses
	return float64(completed) / elapsed, nil
}
