package scenario

import (
	"testing"
	"time"
)

// TestRegistryNames: all five campus scenarios are registered and sorted.
func TestRegistryNames(t *testing.T) {
	want := []string{"dhcp-churn", "flap-storm", "packetin-flood",
		"revocation-storm", "worm-quarantine"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if _, err := RunByName("no-such", Config{}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestFlapStormQuick runs the flap storm at CI scale and checks the result
// shape: mutation and admission distributions populated, SLO verdicts
// attached, entity population at quick-campus scale.
func TestFlapStormQuick(t *testing.T) {
	results, err := RunByName("flap-storm", Config{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	res := results[0]
	if res.Scenario != "flap-storm" || !res.Quick || res.Seed != 7 {
		t.Fatalf("stamping wrong: %+v", res)
	}
	if res.Entities != quickEdges*quickHostsPerEdge*bindingsPerHost {
		t.Fatalf("entities = %d", res.Entities)
	}
	tte, ok := res.Metric("mutation_tte")
	if !ok || tte.Count == 0 || tte.P99 <= 0 {
		t.Fatalf("mutation_tte = %+v", tte)
	}
	adm, ok := res.Metric("admission_latency")
	if !ok || adm.Count == 0 || adm.P50 <= 0 || adm.P99 < adm.P50 {
		t.Fatalf("admission_latency = %+v", adm)
	}
	if len(res.SLOs) == 0 {
		t.Fatal("no SLO verdicts")
	}
	for _, v := range res.SLOs {
		if !v.Pass {
			t.Errorf("SLO %s violated: actual=%g threshold=%g", v.Name, v.Actual, v.Threshold)
		}
	}
}

// TestRevocationStormQuick: per-revocation TTE quantiles are measured and
// the committed revocation gate holds at quick scale.
func TestRevocationStormQuick(t *testing.T) {
	results, err := RunByName("revocation-storm", Config{Seed: 11, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	rev, ok := res.Metric("revocation_tte")
	if !ok || rev.Count != 150 {
		t.Fatalf("revocation_tte = %+v", rev)
	}
	rate, ok := res.Metric("revocations")
	if !ok || rate.Rate <= 0 {
		t.Fatalf("revocations = %+v", rate)
	}
	if !res.Passed() {
		t.Fatalf("revocation storm violated SLOs: %+v", res.SLOs)
	}
}

// TestWormQuarantineDeterministic: the worm race runs on the simulated
// clock, so two runs with one seed must produce identical infection counts,
// and the quarantine must contain the outbreak short of full infection.
func TestWormQuarantineDeterministic(t *testing.T) {
	run := func() *Result {
		t.Helper()
		results, err := RunByName("worm-quarantine", Config{Seed: 3, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return results[0]
	}
	a, b := run(), run()
	ia, _ := a.Metric("infections")
	ib, _ := b.Metric("infections")
	if ia.Count != ib.Count {
		t.Fatalf("nondeterministic infections: %d vs %d", ia.Count, ib.Count)
	}
	pop, _ := a.Metric("population")
	if ia.Count == 0 || ia.Count >= pop.Count {
		t.Fatalf("infections = %d of %d, want partial spread", ia.Count, pop.Count)
	}
	found := false
	for _, v := range a.SLOs {
		if v.Name == "worm-containment" {
			found = true
			if !v.Pass {
				t.Fatalf("containment gate failed: %+v", v)
			}
		}
	}
	if !found {
		t.Fatal("no worm-containment verdict")
	}
}

// TestDurationMetricQuantiles: the metric summarizer orders its quantiles.
func TestDurationMetricQuantiles(t *testing.T) {
	samples := make([]time.Duration, 1000)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Microsecond
	}
	m := durationMetric("x", samples)
	if m.Count != 1000 || !(m.P50 < m.P95 && m.P95 < m.P99 && m.P99 <= m.P999 && m.P999 <= m.Max) {
		t.Fatalf("quantiles out of order: %+v", m)
	}
	empty := durationMetric("y", nil)
	if empty.Count != 0 || empty.P99 != 0 {
		t.Fatalf("empty metric = %+v", empty)
	}
}
