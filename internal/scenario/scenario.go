// Package scenario is DFI's campus-scale proving ground: named hostile
// workloads — authentication flap storms, DHCP re-binding churn, mass
// revocation, a worm-vs-quarantine race, a packet-in flood — run against a
// fat-tree control plane with ~100k bound identifiers, each recording
// latency tails, throughput and service-level-objective verdicts.
//
// Scenarios are deterministic where the underlying machinery allows it:
// the worm race runs entirely on a simulated clock, and every workload
// derives its choices from Config.Seed. Latency distributions are measured
// on the wall clock (that is the quantity the SLOs gate), so absolute
// values vary with the machine while shapes and verdict margins are
// stable.
//
// dfi-bench -scenario <name> -json runs scenarios and emits the
// schema-versioned BENCH_scenarios.json trajectory that CI regresses
// against a pinned baseline.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"github.com/dfi-sdn/dfi/internal/harness"
	"github.com/dfi-sdn/dfi/internal/obs"
)

// Config parameterizes one scenario run.
type Config struct {
	// Seed drives every random choice; same seed → same workload.
	Seed int64
	// Quick shrinks the campus (~5k bound identifiers instead of ~100k)
	// and the workload so a scenario finishes in seconds — the CI smoke
	// setting. Full scale is the default.
	Quick bool
}

// Metric is one measured distribution or rate, in base units (seconds for
// latencies, events for counts).
type Metric struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max,omitempty"`
	// Rate is events per second where the metric has a natural rate
	// (throughput metrics), zero otherwise.
	Rate float64 `json:"rate,omitempty"`
}

// Verdict is one SLO gate outcome.
type Verdict struct {
	Name      string  `json:"name"`
	Metric    string  `json:"metric"`
	Quantile  float64 `json:"quantile,omitempty"`
	Threshold float64 `json:"threshold"`
	Actual    float64 `json:"actual"`
	Pass      bool    `json:"pass"`
}

// Result is one scenario's full record.
type Result struct {
	Scenario    string    `json:"scenario"`
	Description string    `json:"description"`
	Seed        int64     `json:"seed"`
	Quick       bool      `json:"quick"`
	Entities    int       `json:"entities"`
	Switches    int       `json:"switches"`
	DurationSec float64   `json:"duration_seconds"`
	Metrics     []Metric  `json:"metrics"`
	SLOs        []Verdict `json:"slos"`
}

// Passed reports whether every SLO gate held.
func (r *Result) Passed() bool {
	for _, v := range r.SLOs {
		if !v.Pass {
			return false
		}
	}
	return true
}

// Metric returns the named metric and whether it exists.
func (r *Result) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Scenario is one registered hostile workload.
type Scenario struct {
	Name        string
	Description string
	Run         func(Config) (*Result, error)
}

// registry holds the named scenarios in registration order.
var registry []Scenario

func register(s Scenario) { registry = append(registry, s) }

// All returns every registered scenario, sorted by name.
func All() []Scenario {
	out := append([]Scenario(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Find returns the named scenario.
func Find(name string) (Scenario, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name
	}
	return out
}

// durationMetric summarizes raw samples with harness.Percentile — the
// exact-order-statistics oracle — rather than bucketed estimates.
func durationMetric(name string, samples []time.Duration) Metric {
	m := Metric{Name: name, Unit: "seconds", Count: uint64(len(samples))}
	if len(samples) == 0 {
		return m
	}
	var sum time.Duration
	max := samples[0]
	for _, s := range samples {
		sum += s
		if s > max {
			max = s
		}
	}
	m.Mean = (sum / time.Duration(len(samples))).Seconds()
	m.P50 = harness.Percentile(samples, 50).Seconds()
	m.P95 = harness.Percentile(samples, 95).Seconds()
	m.P99 = harness.Percentile(samples, 99).Seconds()
	m.P999 = harness.Percentile(samples, 99.9).Seconds()
	m.Max = max.Seconds()
	return m
}

// snapshotMetric summarizes a histogram interval at bucket resolution, for
// distributions recorded inside components (admission stages, TTE).
func snapshotMetric(name string, snap obs.HistogramSnapshot) Metric {
	m := Metric{Name: name, Unit: "seconds", Count: snap.Count()}
	if snap.Count() == 0 {
		return m
	}
	m.Mean = (snap.Sum() / time.Duration(snap.Count())).Seconds()
	m.P50 = snap.Quantile(0.5).Seconds()
	m.P95 = snap.Quantile(0.95).Seconds()
	m.P99 = snap.Quantile(0.99).Seconds()
	m.P999 = snap.Quantile(0.999).Seconds()
	return m
}

// countMetric records a bare event count.
func countMetric(name, unit string, n uint64) Metric {
	return Metric{Name: name, Unit: unit, Count: n}
}

// rateMetric records a throughput.
func rateMetric(name string, events uint64, perSec float64) Metric {
	return Metric{Name: name, Unit: "per_second", Count: events, Rate: perSec}
}

// gate builds one SLO verdict: actual ≤ threshold passes.
func gate(name, metric string, q, threshold, actual float64) Verdict {
	return Verdict{
		Name: name, Metric: metric, Quantile: q,
		Threshold: threshold, Actual: actual,
		Pass: actual <= threshold,
	}
}

// gateMin is gate with the inequality flipped: actual ≥ threshold passes
// (throughput floors, containment counts).
func gateMin(name, metric string, threshold, actual float64) Verdict {
	return Verdict{
		Name: name, Metric: metric,
		Threshold: threshold, Actual: actual,
		Pass: actual >= threshold,
	}
}

// errUnknown reports a scenario lookup failure with the known names.
func errUnknown(name string) error {
	return fmt.Errorf("scenario: unknown %q (have %v)", name, Names())
}

// RunByName runs one scenario, or every scenario for name "all". Results
// come back in execution (sorted-name) order; the first scenario error
// aborts the run.
func RunByName(name string, cfg Config) ([]*Result, error) {
	var run []Scenario
	if name == "all" {
		run = All()
	} else {
		s, ok := Find(name)
		if !ok {
			return nil, errUnknown(name)
		}
		run = []Scenario{s}
	}
	out := make([]*Result, 0, len(run))
	for _, s := range run {
		start := time.Now()
		res, err := s.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		res.Scenario = s.Name
		res.Description = s.Description
		res.Seed = cfg.Seed
		res.Quick = cfg.Quick
		res.DurationSec = time.Since(start).Seconds()
		out = append(out, res)
	}
	return out, nil
}
