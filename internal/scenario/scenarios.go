package scenario

import (
	"fmt"
	"io"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/cbench"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/core/pdp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/obs/slo"
	"github.com/dfi-sdn/dfi/internal/testbed"
)

func init() {
	register(Scenario{
		Name: "flap-storm",
		Description: "Authentication flap storm: users log on and off in a tight " +
			"loop, each flap inserting and revoking a per-user allow rule while " +
			"admissions interleave on the flapping hosts.",
		Run: runFlapStorm,
	})
	register(Scenario{
		Name: "dhcp-churn",
		Description: "DHCP re-binding churn: hosts rebind to fresh IPs, " +
			"invalidating the binding epoch, with admissions from freshly " +
			"rebound hosts racing the invalidation.",
		Run: runDHCPChurn,
	})
	register(Scenario{
		Name: "revocation-storm",
		Description: "Mass revocation: a contractor PDP's rule population is " +
			"revoked rule-by-rule, measuring per-revocation time-to-enforcement " +
			"including the synchronous switch flush.",
		Run: runRevocationStorm,
	})
	register(Scenario{
		Name: "worm-quarantine",
		Description: "Worm-vs-quarantine race on the paper's 92-host testbed " +
			"under AT-RBAC: a business-hours foothold spreads while the " +
			"quarantine PDP isolates flagged hosts after a detection delay.",
		Run: runWormQuarantine,
	})
	register(Scenario{
		Name: "packetin-flood",
		Description: "Packet-in flood: a cbench switch drives fuzzed new-flow " +
			"packet-ins through the full proxy + PCP stack at maximum rate; the " +
			"SLO engine must flag the flood via its packet-in rate objective.",
		Run: runPacketInFlood,
	})
}

// runFlapStorm loops seeded users through logoff/logon cycles. Every flap
// revokes and re-inserts that user's allow rule (the auth-triggered policy
// mutation) and unbinds/rebinds the user↔host edge, while admissions from
// the flapping host interleave — first under the live rule, then after the
// revoke against default deny.
func runFlapStorm(cfg Config) (*Result, error) {
	c := newCampus(cfg)
	if err := c.pm.RegisterPDP("campus-auth", 50); err != nil {
		return nil, err
	}
	flaps := 2000
	if cfg.Quick {
		flaps = 200
	}
	var tteSamples, admitSamples []time.Duration
	engine := c.newEngine()
	defer engine.Close()
	engine.Evaluate()

	start := time.Now()
	for i := 0; i < flaps; i++ {
		h := c.pickHost()
		peer := c.pickHost()

		// Logon: rebind the user and emit their allow rule.
		c.erm.BindUserHost(h.user, h.name)
		w := time.Now()
		id, err := c.pm.Insert(policy.Rule{
			PDP:    "campus-auth",
			Action: policy.ActionAllow,
			Src:    policy.EndpointSpec{User: h.user},
		})
		if err != nil {
			return nil, fmt.Errorf("flap %d insert: %w", i, err)
		}
		tteSamples = append(tteSamples, time.Since(w))

		// Admissions under the live rule.
		admitSamples = append(admitSamples,
			c.admit(h, peer, uint16(10000+i%50000)),
			c.admit(h, peer, uint16(11000+i%50000)))

		// Logoff: revoke the rule and drop the binding.
		w = time.Now()
		if err := c.pm.Revoke(id); err != nil {
			return nil, fmt.Errorf("flap %d revoke: %w", i, err)
		}
		tteSamples = append(tteSamples, time.Since(w))
		c.erm.UnbindUserHost(h.user, h.name)

		// One admission against default deny after the revoke.
		admitSamples = append(admitSamples, c.admit(h, peer, uint16(12000+i%50000)))

		// Rebind so the campus stays fully bound for later picks.
		c.erm.BindUserHost(h.user, h.name)
	}
	elapsed := time.Since(start)

	res := &Result{
		Entities: c.entities(),
		Switches: len(c.switches),
		Metrics: []Metric{
			durationMetric("mutation_tte", tteSamples),
			durationMetric("admission_latency", admitSamples),
			rateMetric("flaps", uint64(flaps), float64(flaps)/elapsed.Seconds()),
		},
		SLOs: engineVerdicts(engine),
	}
	return res, nil
}

// runDHCPChurn rotates hosts onto fresh IP leases. Each rebind tears down
// the host↔IP and IP↔MAC edges and rebuilds them in a reserved lease
// subnet, bumping the binding epoch; admissions from rebound hosts must
// resolve through the fresh bindings (stale cache entries are re-resolved,
// not served).
func runDHCPChurn(cfg Config) (*Result, error) {
	c := newCampus(cfg)
	allowAll, err := pdp.NewAllowAll(c.pm)
	if err != nil {
		return nil, err
	}
	if err := allowAll.Enable(); err != nil {
		return nil, err
	}
	rebinds := 2000
	if cfg.Quick {
		rebinds = 200
	}
	cacheEvents := c.reg.FindCounterVec("dfi_pcp_cache_events_total")
	staleBefore := cacheEvents.With("stale").Value()

	var admitSamples []time.Duration
	engine := c.newEngine()
	defer engine.Close()
	engine.Evaluate()

	start := time.Now()
	for i := 0; i < rebinds; i++ {
		idx := c.rng.Intn(len(c.hosts))
		h := &c.hosts[idx]

		// Lease expiry: drop the old chain, rebind in the lease subnet.
		c.erm.UnbindIPMAC(h.ip, h.mac)
		c.erm.UnbindHostIP(h.name, h.ip)
		h.ip = netpkt.IPv4{10, byte(200 + (i>>16)&0x0f), byte(i >> 8), byte(i)}
		c.erm.BindHostIP(h.name, h.ip)
		c.erm.BindIPMAC(h.ip, h.mac)

		// Admissions from the freshly rebound host (and one toward it).
		peer := c.pickHost()
		admitSamples = append(admitSamples,
			c.admit(*h, peer, uint16(20000+i%40000)),
			c.admit(peer, *h, uint16(21000+i%40000)))
	}
	elapsed := time.Since(start)
	stale := cacheEvents.With("stale").Value() - staleBefore

	res := &Result{
		Entities: c.entities(),
		Switches: len(c.switches),
		Metrics: []Metric{
			durationMetric("admission_latency", admitSamples),
			rateMetric("rebinds", uint64(rebinds), float64(rebinds)/elapsed.Seconds()),
			countMetric("cache_stale_events", "events", stale),
		},
		SLOs: engineVerdicts(engine),
	}
	return res, nil
}

// runRevocationStorm builds a contractor PDP's rule population, then
// revokes it rule-by-rule — the paper's deprovisioning burst — measuring
// each revocation's wall-clock time-to-enforcement through the synchronous
// switch flush. Admissions after the storm confirm the data path survived.
func runRevocationStorm(cfg Config) (*Result, error) {
	c := newCampus(cfg)
	if err := c.pm.RegisterPDP("contractor", 60); err != nil {
		return nil, err
	}
	rules := 1500
	if cfg.Quick {
		rules = 150
	}

	// Provision: one allow rule per contractor toward a seeded peer.
	ids := make([]policy.RuleID, 0, rules)
	var insertSamples []time.Duration
	for i := 0; i < rules; i++ {
		h := c.hosts[i%len(c.hosts)]
		peer := c.pickHost()
		w := time.Now()
		id, err := c.pm.Insert(policy.Rule{
			PDP:    "contractor",
			Action: policy.ActionAllow,
			Src:    policy.EndpointSpec{User: h.user},
			Dst:    policy.EndpointSpec{IP: &peer.ip},
		})
		if err != nil {
			return nil, fmt.Errorf("provision %d: %w", i, err)
		}
		insertSamples = append(insertSamples, time.Since(w))
		ids = append(ids, id)
	}

	engine := c.newEngine()
	defer engine.Close()
	engine.Evaluate()

	// The storm: revoke every contractor rule individually, in seeded
	// random order (mass revocation arrives unordered in practice).
	c.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	var revokeSamples []time.Duration
	start := time.Now()
	for i, id := range ids {
		w := time.Now()
		if err := c.pm.Revoke(id); err != nil {
			return nil, fmt.Errorf("revoke %d: %w", i, err)
		}
		revokeSamples = append(revokeSamples, time.Since(w))
	}
	elapsed := time.Since(start)

	// Post-storm admissions: the control plane must still answer.
	var admitSamples []time.Duration
	probes := 50
	if cfg.Quick {
		probes = 20
	}
	for i := 0; i < probes; i++ {
		admitSamples = append(admitSamples,
			c.admit(c.pickHost(), c.pickHost(), uint16(30000+i)))
	}

	revoked := durationMetric("revocation_tte", revokeSamples)
	res := &Result{
		Entities: c.entities(),
		Switches: len(c.switches),
		Metrics: []Metric{
			revoked,
			durationMetric("insert_tte", insertSamples),
			durationMetric("admission_latency", admitSamples),
			rateMetric("revocations", uint64(len(ids)), float64(len(ids))/elapsed.Seconds()),
		},
		SLOs: append(engineVerdicts(engine),
			gate("revocation-p99", "revocation_tte", 0.99, 0.050, revoked.P99)),
	}
	return res, nil
}

// runWormQuarantine races the paper's worm against the quarantine PDP on
// the 92-host testbed under AT-RBAC, entirely on the simulated clock: a
// business-hours foothold spreads through logged-on reachability while
// detection isolates infected hosts after a fixed delay. The run is fully
// deterministic per seed.
func runWormQuarantine(cfg Config) (*Result, error) {
	const (
		footholdAt = 9*time.Hour + 30*time.Minute
		horizon    = 11 * time.Hour
	)
	reg := obs.NewRegistry()
	tb, err := testbed.New(testbed.Config{
		Condition:       testbed.ConditionATRBAC,
		Seed:            cfg.Seed,
		QuarantineDelay: 5 * time.Minute,
		Metrics:         reg,
	})
	if err != nil {
		return nil, err
	}
	foothold := tb.FootholdHost(footholdAt)
	infection, err := tb.RunInfection(foothold, footholdAt, horizon)
	if err != nil {
		return nil, err
	}

	total := len(tb.EndHosts())
	infected := len(infection.Infections)
	metrics := []Metric{
		countMetric("infections", "hosts", uint64(infected)),
		countMetric("population", "hosts", uint64(total)),
		countMetric("admissions", "packet_ins", tb.Admissions()),
	}
	if first, ok := infection.FirstSpread(); ok {
		metrics = append(metrics, durationMetric("first_spread", []time.Duration{first}))
	}
	var slos []Verdict
	if tte := reg.FindHistogram("dfi_policy_mutation_tte_seconds"); tte != nil {
		snap := tte.Snapshot()
		metrics = append(metrics, snapshotMetric("mutation_tte", snap))
		slos = append(slos, gate("quarantine-tte-p99", "mutation_tte", 0.99,
			0.050, snap.Quantile(0.99).Seconds()))
	}
	// Containment: the quarantine race must leave part of the campus
	// uninfected — baseline (no access control) infects all hosts.
	slos = append(slos, gate("worm-containment", "infections", 0,
		float64(total-1), float64(infected)))

	res := &Result{
		// The paper's topology: 92 end hosts across 13 enclave switches
		// plus one core.
		Entities: len(tb.Hosts()),
		Switches: 14,
		Metrics:  metrics,
		SLOs:     slos,
	}
	return res, nil
}

// runPacketInFlood drives the full System — proxy, PCP, admission queue —
// with cbench's fuzzed new-flow packet-ins: a serial latency phase, then an
// unpaced throughput phase. The System carries a packet-in rate SLO that
// the flood must trip (the detection check), while admission-stage latency
// under flood stays inside the campus SLO.
func runPacketInFlood(cfg Config) (*Result, error) {
	latencyFlows, floodFor := 2000, 2*time.Second
	if cfg.Quick {
		latencyFlows, floodFor = 300, 600*time.Millisecond
	}

	reg := obs.NewRegistry()
	packetIns := func() uint64 {
		if c := reg.FindCounter("dfi_pcp_processed_total"); c != nil {
			return c.Value()
		}
		return 0
	}
	ctl := controller.New(controller.Config{MaxConcurrent: 256})
	sys, err := dfi.New(
		dfi.WithMetrics(reg),
		dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
			a, b := bufpipe.New()
			go func() { _ = ctl.Serve(b) }()
			return a, nil
		}),
		dfi.WithAdmissionQueue(1024, 8),
		// A flood-detection objective: sustained packet-in rate above
		// 500/s over the window marks the objective violated.
		dfi.WithSLO(slo.Rate("packetin-rate", "dfi_pcp_processed_total",
			packetIns, 500, time.Minute)),
		dfi.WithSLOInterval(-1),
	)
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	swEnd, cpEnd := bufpipe.New()
	go func() { _ = sys.ServeSwitch(cpEnd) }()
	bench, err := cbench.New(swEnd, cbench.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if err := bench.WaitReady(5 * time.Second); err != nil {
		return nil, err
	}

	stages := reg.FindHistogramVec("dfi_pcp_stage_seconds").With("total")
	before := stages.Snapshot()
	sys.SLO().Evaluate() // baseline sample for the rate window

	lat, err := bench.Latency(latencyFlows)
	if err != nil {
		return nil, fmt.Errorf("latency phase: %w", err)
	}
	tput, err := bench.Throughput(floodFor, 0)
	if err != nil {
		return nil, fmt.Errorf("throughput phase: %w", err)
	}

	interval := stages.Snapshot().Sub(before)
	admission := snapshotMetric("admission_stage_total", interval)

	// The detection check: after the flood, the rate objective must be in
	// violation.
	detected := false
	var floodRate float64
	for _, st := range sys.SLO().Evaluate().Statuses {
		if st.Name == "packetin-rate" {
			detected = !st.OK
			floodRate = st.Value
		}
	}

	setup := Metric{
		Name: "flow_setup_latency", Unit: "seconds",
		Count: lat.N(), Mean: lat.Mean().Seconds(),
	}
	res := &Result{
		Entities: 0,
		Switches: 1,
		Metrics: []Metric{
			admission,
			setup,
			rateMetric("flood_throughput", bench.Responses(), tput),
			rateMetric("packet_ins", packetIns(), floodRate),
		},
		SLOs: []Verdict{
			gateMin("flood-throughput", "flood_throughput", 200, tput),
			gate("flood-admission-p99", "admission_stage_total", 0.99,
				0.025, admission.P99),
			gateMin("flood-detected", "packetin-rate", 1, boolGate(detected)),
		},
	}
	return res, nil
}

// boolGate maps a pass/fail check onto gateMin's numeric domain.
func boolGate(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}
