package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/obs/slo"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

// Campus scale: a k=8-ish fat tree trimmed to the layers the control plane
// actually exercises — 4 core, 8 aggregation, 32 edge switches — with 800
// hosts per edge switch. Each host binds a four-link identifier chain
// (user↔host↔IP↔MAC↔location), so the full campus carries 25,600 hosts and
// 102,400 live bindings in the Entity Resolution Manager. Quick mode keeps
// the same shape at 1/20 the population for CI smoke runs.
const (
	fullEdges        = 32
	fullAggs         = 8
	fullCores        = 4
	fullHostsPerEdge = 800

	quickEdges        = 8
	quickAggs         = 4
	quickCores        = 2
	quickHostsPerEdge = 160

	bindingsPerHost = 4
)

// campusHost is one bound endpoint.
type campusHost struct {
	name string
	user string
	ip   netpkt.IPv4
	mac  netpkt.MAC
	dpid uint64
	port uint32
}

// campus is the scenario harness's control plane under test: a Policy
// Manager and PCP sharing one obs registry, fronting a fat tree of
// simulated switches, with the identifier space fully bound.
type campus struct {
	cfg Config
	rng *rand.Rand

	reg *obs.Registry
	erm *entity.Manager
	pm  *policy.Manager
	pcp *pcp.PCP

	switches map[uint64]*switchsim.Switch
	edges    []uint64
	hosts    []campusHost

	tte    *obs.Histogram
	stages *obs.HistogramVec
}

// campusSwitchClient adapts a simulated switch to the PCP's writer.
type campusSwitchClient struct{ sw *switchsim.Switch }

func (c campusSwitchClient) WriteFlowMod(fm *openflow.FlowMod) error {
	return c.sw.ApplyFlowMod(fm)
}

// newCampus builds and fully binds the campus. The PCP runs at native
// speed on the wall clock: scenario latency distributions measure the
// implementation, and determinism comes from the seeded workload rather
// than a simulated clock.
func newCampus(cfg Config) *campus {
	edges, aggs, cores, perEdge := fullEdges, fullAggs, fullCores, fullHostsPerEdge
	if cfg.Quick {
		edges, aggs, cores, perEdge = quickEdges, quickAggs, quickCores, quickHostsPerEdge
	}
	c := &campus{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		reg:      obs.NewRegistry(),
		erm:      entity.NewManager(),
		switches: make(map[uint64]*switchsim.Switch),
	}
	c.pm = policy.NewManager(policy.WithObserver(c.reg))
	c.pcp = pcp.New(pcp.Config{
		Entity: c.erm,
		Policy: c.pm,
		Clock:  simclock.Real{},
		Obs:    c.reg,
	})
	c.tte = c.reg.FindHistogram("dfi_policy_mutation_tte_seconds")
	c.stages = c.reg.FindHistogramVec("dfi_pcp_stage_seconds")

	addSwitch := func(dpid uint64) {
		sw := switchsim.NewSwitch(switchsim.Config{DPID: dpid, Clock: simclock.Real{}})
		c.switches[dpid] = sw
		c.pcp.AttachSwitch(dpid, campusSwitchClient{sw: sw})
	}
	for i := 0; i < cores; i++ {
		addSwitch(uint64(1 + i))
	}
	for i := 0; i < aggs; i++ {
		addSwitch(uint64(100 + i))
	}
	for i := 0; i < edges; i++ {
		dpid := uint64(1000 + i)
		addSwitch(dpid)
		c.edges = append(c.edges, dpid)
	}

	// Bind the population: one user, IP, MAC and edge location per host.
	n := edges * perEdge
	c.hosts = make([]campusHost, 0, n)
	for i := 0; i < n; i++ {
		h := campusHost{
			name: fmt.Sprintf("h%05d", i),
			user: fmt.Sprintf("u%05d", i),
			ip:   netpkt.IPv4{10, byte(1 + i>>16), byte(i >> 8), byte(i)},
			mac:  netpkt.MAC{0x02, 0xca, byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)},
			dpid: c.edges[i/perEdge],
			port: uint32(1 + i%perEdge),
		}
		c.erm.BindUserHost(h.user, h.name)
		c.erm.BindHostIP(h.name, h.ip)
		c.erm.BindIPMAC(h.ip, h.mac)
		c.erm.BindMACLocation(h.mac, entity.Location{DPID: h.dpid, Port: h.port})
		c.hosts = append(c.hosts, h)
	}
	return c
}

// entities returns the live binding count.
func (c *campus) entities() int { return len(c.hosts) * bindingsPerHost }

// admit pushes one TCP SYN from src to dst through the PCP on src's edge
// switch and returns the wall-clock admission latency.
func (c *campus) admit(src, dst campusHost, srcPort uint16) time.Duration {
	frame := netpkt.BuildTCP(src.mac, dst.mac, src.ip, dst.ip,
		&netpkt.TCPSegment{SrcPort: srcPort, DstPort: 445, Flags: netpkt.TCPSyn})
	req := &pcp.Request{
		DPID: src.dpid,
		PacketIn: &openflow.PacketIn{
			BufferID: openflow.NoBuffer,
			Reason:   openflow.PacketInReasonNoMatch,
			Match:    &openflow.Match{InPort: openflow.U32(src.port)},
			Data:     frame,
		},
	}
	start := time.Now()
	c.pcp.Process(req)
	return time.Since(start)
}

// pickHost returns a seeded-random host.
func (c *campus) pickHost() campusHost {
	return c.hosts[c.rng.Intn(len(c.hosts))]
}

// newEngine attaches the scenario SLO set to the campus registry: TTE p99
// and admission p99 quantile objectives over one-minute windows. The
// thresholds are the committed campus SLOs every scenario is judged
// against (generous for CI hardware, tight enough to catch an
// asymptotic regression).
func (c *campus) newEngine() *slo.Engine {
	return slo.New(simclock.Real{}, nil,
		slo.Quantile("tte-p99", "dfi_policy_mutation_tte_seconds",
			c.tte, 0.99, 50*time.Millisecond, time.Minute),
		slo.Quantile("admission-p99", `dfi_pcp_stage_seconds{stage="total"}`,
			c.stages.With("total"), 0.99, 10*time.Millisecond, time.Minute),
	)
}

// engineVerdicts maps an engine evaluation onto scenario verdicts.
func engineVerdicts(e *slo.Engine) []Verdict {
	var out []Verdict
	for _, st := range e.Evaluate().Statuses {
		out = append(out, Verdict{
			Name: st.Name, Metric: st.Metric, Quantile: st.Quantile,
			Threshold: st.Threshold, Actual: st.Value, Pass: st.OK,
		})
	}
	return out
}
