package harness

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if got := w.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := w.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.StdDev() != 0 || w.N() != 0 {
		t.Fatal("empty Welford not zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.StdDev() != 0 {
		t.Fatalf("single-sample Mean/StdDev = %v/%v", w.Mean(), w.StdDev())
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, v := range raw {
			ss += (float64(v) - mean) * (float64(v) - mean)
		}
		naiveStd := math.Sqrt(ss / float64(len(raw)-1))
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.StdDev()-naiveStd) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordConcurrent(t *testing.T) {
	var w Welford
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.Add(1)
			}
		}()
	}
	wg.Wait()
	if w.N() != 8000 || w.Mean() != 1 {
		t.Fatalf("N=%d Mean=%v", w.N(), w.Mean())
	}
}

func TestDurationStatsString(t *testing.T) {
	var d DurationStats
	d.Add(5 * time.Millisecond)
	d.Add(7 * time.Millisecond)
	if got := d.String(); got != "6.00ms ± 1.41ms" {
		t.Fatalf("String() = %q", got)
	}
	if d.Min() != 5*time.Millisecond || d.Max() != 7*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", d.Min(), d.Max())
	}
}

func TestPercentile(t *testing.T) {
	samples := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 5 * time.Millisecond,
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{p: 0, want: 1 * time.Millisecond},
		{p: 50, want: 3 * time.Millisecond},
		{p: 100, want: 5 * time.Millisecond},
		{p: 25, want: 2 * time.Millisecond},
		{p: 125, want: 5 * time.Millisecond},
		{p: -3, want: 1 * time.Millisecond},
	}
	for _, tt := range tests {
		if got := Percentile(samples, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	// The input must not be reordered.
	unsorted := []time.Duration{3, 1, 2}
	_ = Percentile(unsorted, 50)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

// TestPercentileEdges pins the hardened edge behavior: NaN reads as 0,
// single samples answer every p, and values of p infinitesimally below 100
// can never index past the last sample.
func TestPercentileEdges(t *testing.T) {
	samples := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	if got := Percentile(samples, math.NaN()); got != 1*time.Millisecond {
		t.Errorf("Percentile(NaN) = %v, want min", got)
	}
	single := []time.Duration{7 * time.Millisecond}
	for _, p := range []float64{0, 33.3, 50, 99.999, 100} {
		if got := Percentile(single, p); got != 7*time.Millisecond {
			t.Errorf("Percentile(single, %v) = %v", p, got)
		}
	}
	// A p value just under 100 must interpolate within range, not panic or
	// overshoot, even for large sample counts where rank is near len-1.
	big := make([]time.Duration, 100_000)
	for i := range big {
		big[i] = time.Duration(i) * time.Microsecond
	}
	next := math.Nextafter(100, 0)
	got := Percentile(big, next)
	if got < big[len(big)-2] || got > big[len(big)-1] {
		t.Errorf("Percentile(big, %v) = %v, out of [%v,%v]", next, got, big[len(big)-2], big[len(big)-1])
	}
	if got := Percentile(big, 100); got != big[len(big)-1] {
		t.Errorf("Percentile(big, 100) = %v, want max", got)
	}
}
