// Package harness provides the experiment machinery that regenerates the
// paper's tables and figures: online statistics, workload generators,
// parameter sweeps and plain-text table/series renderers.
package harness

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Welford accumulates streaming mean and variance (Welford's algorithm).
// It is safe for concurrent use.
type Welford struct {
	mu   sync.Mutex
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		w.min = math.Min(w.min, x)
		w.max = math.Max(w.max, x)
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Mean returns the sample mean (zero when empty).
func (w *Welford) Mean() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.mean
}

// StdDev returns the sample standard deviation (zero for n < 2).
func (w *Welford) StdDev() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Min returns the smallest observation (zero when empty).
func (w *Welford) Min() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.min
}

// Max returns the largest observation (zero when empty).
func (w *Welford) Max() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.max
}

// Reset discards all observations.
func (w *Welford) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n, w.mean, w.m2, w.min, w.max = 0, 0, 0, 0, 0
}

// DurationStats accumulates time.Duration observations.
type DurationStats struct {
	w Welford
}

// Add incorporates one duration.
func (d *DurationStats) Add(v time.Duration) { d.w.Add(float64(v)) }

// N returns the observation count.
func (d *DurationStats) N() uint64 { return d.w.N() }

// Mean returns the mean duration.
func (d *DurationStats) Mean() time.Duration { return time.Duration(d.w.Mean()) }

// StdDev returns the sample standard deviation.
func (d *DurationStats) StdDev() time.Duration { return time.Duration(d.w.StdDev()) }

// Min returns the smallest observation.
func (d *DurationStats) Min() time.Duration { return time.Duration(d.w.Min()) }

// Max returns the largest observation.
func (d *DurationStats) Max() time.Duration { return time.Duration(d.w.Max()) }

// Reset discards all observations.
func (d *DurationStats) Reset() { d.w.Reset() }

// String renders mean ± σ in milliseconds, the paper's format.
func (d *DurationStats) String() string {
	return fmt.Sprintf("%.2fms ± %.2fms",
		float64(d.Mean())/float64(time.Millisecond),
		float64(d.StdDev())/float64(time.Millisecond))
}

// Percentile computes the p-th percentile (0–100) of samples using linear
// interpolation. The input is not modified. Out-of-range p clamps to the
// min/max sample, NaN reads as 0, and an empty input returns zero; the
// interpolation indices are clamped so floating-point error near p=100 can
// never step past the last sample.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if math.IsNaN(p) || p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo < 0 {
		lo = 0
	}
	if hi > len(sorted)-1 {
		hi = len(sorted) - 1
	}
	if lo >= hi {
		return sorted[hi]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}
