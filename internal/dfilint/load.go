package dfilint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package of the analyzed module.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the package's directory relative to the module root.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks every package under root (a module root
// containing go.mod), excluding _test.go files and testdata/vendor trees.
// It is a self-contained module loader built on go/parser + go/types +
// go/importer only: intra-module imports resolve to the packages being
// checked, standard-library imports are type-checked from GOROOT source.
func Load(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	dirs, err := goDirs(root)
	if err != nil {
		return nil, err
	}

	ld := &loader{
		fset:    fset,
		modPath: modPath,
		parsed:  make(map[string]*parsedPkg),
		checked: make(map[string]*Package),
	}
	// srcimporter type-checks the standard library from GOROOT source; it
	// must share our FileSet so diagnostics keep correct positions. Disable
	// cgo so packages like net type-check from their pure-Go fallbacks
	// without a C toolchain.
	build.Default.CgoEnabled = false
	ld.std = importer.ForCompiler(fset, "source", nil)

	for _, dir := range dirs {
		pp, err := parseDir(fset, root, dir)
		if err != nil {
			return nil, err
		}
		if pp == nil {
			continue
		}
		rel, _ := filepath.Rel(root, dir)
		pp.dir = filepath.ToSlash(rel)
		if pp.dir == "." {
			pp.path = modPath
		} else {
			pp.path = modPath + "/" + pp.dir
		}
		ld.parsed[pp.path] = pp
	}

	paths := make([]string, 0, len(ld.parsed))
	for p := range ld.parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var pkgs []*Package
	for _, p := range paths {
		pkg, err := ld.check(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// parsedPkg is one directory's parsed-but-unchecked package.
type parsedPkg struct {
	path  string
	dir   string
	name  string
	files []*ast.File
}

type loader struct {
	fset    *token.FileSet
	modPath string
	std     types.Importer
	parsed  map[string]*parsedPkg
	checked map[string]*Package
	stack   []string
}

// Import implements types.Importer: intra-module paths resolve to the
// packages under analysis; everything else defers to the stdlib importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		pkg, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// check type-checks one parsed package (and, transitively, its intra-module
// imports), memoizing the result.
func (ld *loader) check(path string) (*Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	pp, ok := ld.parsed[path]
	if !ok {
		return nil, fmt.Errorf("dfilint: unknown intra-module package %q", path)
	}
	for _, on := range ld.stack {
		if on == path {
			return nil, fmt.Errorf("dfilint: import cycle through %q", path)
		}
	}
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []string
	conf := types.Config{
		Importer: ld,
		Error: func(err error) {
			errs = append(errs, err.Error())
		},
	}
	tpkg, _ := conf.Check(path, ld.fset, pp.files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("dfilint: type-checking %s:\n\t%s", path, strings.Join(errs, "\n\t"))
	}
	pkg := &Package{
		Path:  path,
		Dir:   pp.dir,
		Fset:  ld.fset,
		Files: pp.files,
		Types: tpkg,
		Info:  info,
	}
	ld.checked[path] = pkg
	return pkg, nil
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("dfilint: %w (not a module root?)", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("dfilint: no module declaration in %s", gomod)
}

// goDirs lists every directory under root that may hold a package, skipping
// testdata, vendor, hidden and underscore-prefixed trees.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test Go files of one directory, returning nil when
// the directory holds no buildable package.
func parseDir(fset *token.FileSet, root, dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pp := &parsedPkg{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		// Honor build constraints (//go:build lines and _GOOS.go name
		// suffixes) for the host platform, so platform-split packages like
		// netpoll type-check with exactly one implementation.
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pp.name == "" {
			pp.name = f.Name.Name
		} else if pp.name != f.Name.Name {
			return nil, fmt.Errorf("dfilint: %s: multiple packages %q and %q", dir, pp.name, f.Name.Name)
		}
		pp.files = append(pp.files, f)
	}
	if len(pp.files) == 0 {
		return nil, nil
	}
	return pp, nil
}
