// Package lockheld exercises the lockheld analyzer.
package lockheld

import "sync"

// Bus is a stand-in event bus: the analyzer flags any Publish method call
// made under a lock.
type Bus struct{}

// Publish is the flagged method.
func (b *Bus) Publish(v int) {}

// S couples a mutex with the blocking operations the analyzer tracks.
type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	cb func()
	b  *Bus
}

// Bad performs every flagged operation while holding s.mu.
func (s *S) Bad(v int) {
	s.mu.Lock()
	s.ch <- v      // want "channel send while s.mu is held"
	s.b.Publish(v) // want "s.b.Publish while s.mu is held"
	s.cb()         // want "call through function value"
	s.mu.Unlock()
	s.ch <- v // lock released: no diagnostic
	s.cb()
}

// BadDefer holds the lock to return via defer.
func (s *S) BadDefer() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.cb() // want "call through function value"
}

// BadSelect sends in a select with no default: still blocking.
func (s *S) BadSelect(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v: // want "blocking select send while s.mu is held"
	}
}

// GoodSelect sends non-blockingly (select with default) under the lock.
func (s *S) GoodSelect(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
	default:
	}
}

// GoodGoroutine launches work under the lock; the goroutine body runs with
// its own (empty) lock state.
func (s *S) GoodGoroutine(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- v
		s.cb()
	}()
}

// Suppressed acknowledges a deliberate under-lock callback.
func (s *S) Suppressed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//dfi:ignore lockheld
	s.cb()
}
