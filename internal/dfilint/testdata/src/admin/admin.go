// Package admin exercises the errenvelope analyzer (which keys on the
// package name).
package admin

import (
	"encoding/json"
	"net/http"
)

// envelope mirrors the real /v1 error envelope.
type envelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// httpError is the envelope helper: the status arrives as a variable, so
// the analyzer does not flag it.
func httpError(w http.ResponseWriter, status int, code, msg string) {
	var e envelope
	e.Error.Code, e.Error.Message = code, msg
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(e)
}

// BadHandler emits errors every way the analyzer forbids.
func BadHandler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest) // want "http.Error writes a plain-text error"
	w.WriteHeader(http.StatusNotFound)           // want "bypasses the /v1 error envelope"
	w.WriteHeader(422)                           // want "bypasses the /v1 error envelope"
}

// GoodHandler uses the helper, and success statuses stay legal.
func GoodHandler(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusNoContent)
	httpError(w, http.StatusNotFound, "not_found", "no such resource")
}

// Suppressed hard-codes an error status deliberately.
func Suppressed(w http.ResponseWriter) {
	//dfi:ignore errenvelope
	w.WriteHeader(http.StatusTeapot)
}
