// Package policy is a fixture stand-in for the real policy package: the
// snapshotmut analyzer keys on the package name and the Rule type name.
package policy

// RuleID mirrors the real rule id type.
type RuleID uint64

// EndpointSpec mirrors one endpoint of a rule.
type EndpointSpec struct {
	User string
	Host string
}

// Rule mirrors the real immutable snapshot rule.
type Rule struct {
	ID       RuleID
	Priority int
	Src      EndpointSpec
	Dst      EndpointSpec
}

// Decision mirrors the real query result carrying a snapshot rule pointer.
type Decision struct {
	Allowed bool
	Rule    *Rule
}

// Query returns a rule the way a snapshot query would.
func Query() *Rule { return &Rule{} }

// Mutating a rule inside package policy is allowed (pre-publication
// construction); the analyzer exempts the defining package.
func assign(r *Rule, id RuleID) { r.ID = id }

var _ = assign
