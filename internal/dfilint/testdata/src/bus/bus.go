// Package bus is a fixture stand-in for the real event bus: the spanctx
// analyzer keys on the package name, the Event type name and its Trace
// field, and the Publish method name.
package bus

import "fixture/obs"

// Event mirrors the real bus event's propagation surface.
type Event struct {
	Topic   string
	Payload any
	Trace   obs.SpanContext
}

// Bus mirrors the real bus's publish surface.
type Bus struct{}

// Publish delivers ev.
func (b *Bus) Publish(ev Event) error { return nil }
