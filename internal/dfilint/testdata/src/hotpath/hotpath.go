// Package hotpath exercises the hotpathalloc analyzer.
package hotpath

import "fmt"

var sink string

var sinkSlice []byte

func consume(v any) { _ = v }

// Flagged demonstrates every construct hotpathalloc rejects.
//
//dfi:hotpath
func Flagged(id int, parts []string) {
	sink = fmt.Sprintf("flow-%d", id) // want "call to fmt.Sprintf" "boxed into an interface"
	sink = parts[0] + sink            // want "string concatenation"
	buf := make([]byte, 0, 8)         // want "make allocates"
	buf = append(buf, 1)              // want "append may grow"
	sinkSlice = buf
	p := new(int)                 // want "new allocates"
	consume(p)                    // pointers are not boxed: no diagnostic
	consume(id)                   // want "boxed into an interface"
	_ = any(id)                   // want "boxed into an interface"
	_ = []int{id}                 // want "composite literal allocates"
	_ = &struct{}{}               // want "address of composite literal"
	f := func() int { return id } // want "function literal"
	_ = f
}

// Suppressed carries the same violations under //dfi:ignore.
//
//dfi:hotpath
func Suppressed(id int) {
	sink = fmt.Sprintf("flow-%d", id) //dfi:ignore hotpathalloc
	//dfi:ignore hotpathalloc
	consume(id)
}

// NotHot is unannotated: allocation constructs are fine here.
func NotHot(id int) {
	sink = fmt.Sprintf("flow-%d", id)
}
