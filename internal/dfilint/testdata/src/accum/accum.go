// Package accum exercises the analyzers over the event-loop relay's
// accumulator idiom: a shared read buffer feeds a per-connection frame
// state machine, and neither the steady-state feed nor the emit callback
// may allocate or let the transient read chunk escape the call.
package accum

import (
	"encoding/binary"
	"sync"
)

const headerLen = 8

// acc is the per-connection frame accumulator: partial carries header
// bytes across short reads, frame aliases the current chunk.
type acc struct {
	partial []byte
	frame   []byte
}

// Feed is the steady-state path: aliasing subslices of the chunk and
// reusing the partial buffer's capacity is allocation-free, so the
// annotation must hold without suppressions.
//
//dfi:hotpath
func (a *acc) Feed(chunk []byte, emit func([]byte) error) error {
	for len(chunk) >= headerLen {
		n := int(binary.BigEndian.Uint16(chunk[2:4]))
		if n < headerLen || n > len(chunk) {
			break
		}
		a.frame = chunk[:n]
		if err := emit(a.frame); err != nil {
			return err
		}
		chunk = chunk[n:]
	}
	a.partial = appendBytes(a.partial[:0], chunk)
	return nil
}

// appendBytes hosts the partial-frame carry's amortized growth outside
// the annotated steady state (the real accumulator's idiom: short reads
// are rare, so their growth is not hot).
func appendBytes(dst, src []byte) []byte { return append(dst, src...) }

// FeedCopying is the regression the annotation exists to catch: a
// careless rewrite that materializes every frame as a fresh copy.
//
//dfi:hotpath
func (a *acc) FeedCopying(chunk []byte, emit func([]byte) error) error {
	for len(chunk) >= headerLen {
		n := int(binary.BigEndian.Uint16(chunk[2:4]))
		if n < headerLen || n > len(chunk) {
			break
		}
		frame := make([]byte, n) // want "make allocates"
		copy(frame, chunk)
		if err := emit(frame); err != nil {
			return err
		}
		chunk = chunk[n:]
	}
	a.partial = append([]byte(nil), chunk...) // want "append may grow"
	return nil
}

var readPool = sync.Pool{
	New: func() any {
		b := make([]byte, 64<<10)
		return &b
	},
}

// message outlives any single read burst.
type message struct {
	payload []byte
}

var inbox []message

// ReadBurst is the worker read-loop idiom the analyzer must stay quiet
// on: the pooled chunk is fed, consumed within the call, and recycled.
func ReadBurst(read func([]byte) int, a *acc, emit func([]byte) error) error {
	bp := readPool.Get().(*[]byte)
	defer readPool.Put(bp)
	n := read(*bp)
	return a.Feed((*bp)[:n], emit)
}

// ReadBurstLeaky deliberately escapes the pooled read buffer: the parked
// frame aliases recycled backing memory, the exact corruption class the
// event-loop's shared read buffers make possible.
func ReadBurstLeaky(read func([]byte) int) {
	bp := readPool.Get().(*[]byte)
	n := read(*bp)
	inbox[0] = message{payload: (*bp)[:n]} // want "stored into inbox"
	readPool.Put(bp)
}

// ReadBurstReturn hands the pooled read buffer to the caller.
func ReadBurstReturn(read func([]byte) int) []byte {
	bp := readPool.Get().(*[]byte)
	defer readPool.Put(bp)
	n := read(*bp)
	return (*bp)[:n] // want "escapes via return"
}
