// Package metricname exercises the metricname analyzer.
package metricname

import "fixture/obs"

// Register runs every naming violation past the analyzer.
func Register(r *obs.Registry, dyn string) {
	r.Counter("dfi_good_total", "fine")
	r.HistogramVec("dfi_stage_seconds", "fine", "stage", nil)
	r.Counter("bad_name", "missing prefix") // want "must match dfi_"
	r.Counter("dfi_BadCase", "upper case")  // want "must match dfi_"
	r.Counter("dfi_v2_total", "digit")      // want "must match dfi_"
	r.Counter(dyn, "dynamic")               // want "constant string literal"
	r.Gauge("dfi_good_total", "duplicate")  // want "duplicate metric name"
	r.Counter("also_bad", "ack")            //dfi:ignore metricname
}
