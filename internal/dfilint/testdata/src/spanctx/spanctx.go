// Package spanctx exercises the spanctx analyzer: functions receiving a
// bus.Event or obs.SpanContext must thread it into Publish and *Ctx calls.
package spanctx

import (
	"fixture/bus"
	"fixture/obs"
)

// Store mirrors a component with traced entry points.
type Store struct{}

// InsertCtx records v under the caller's span.
func (s *Store) InsertCtx(sc obs.SpanContext, v int) {}

// RevokeAllCtx drops everything under the caller's span.
func (s *Store) RevokeAllCtx(sc obs.SpanContext) {}

// Forward keeps the received event's chain on the republication.
func Forward(b *bus.Bus, ev bus.Event) {
	b.Publish(bus.Event{Topic: "fwd", Trace: ev.Trace})
}

// Drops republishes with a fresh zero trace, severing the chain.
func Drops(b *bus.Bus, ev bus.Event) {
	b.Publish(bus.Event{Topic: "fwd"}) // want "drops the span context"
}

// Threads passes the received context straight through.
func Threads(s *Store, sc obs.SpanContext) {
	s.InsertCtx(sc, 1)
}

// ZeroCtx re-roots instead of propagating.
func ZeroCtx(s *Store, sc obs.SpanContext) {
	s.InsertCtx(obs.SpanContext{}, 1) // want "drops the span context"
}

// Derived propagates through a local derived from the event.
func Derived(b *bus.Bus, s *Store, ev bus.Event) {
	sc := ev.Trace
	s.InsertCtx(sc, 2)
	next := bus.Event{Topic: "next", Trace: sc}
	b.Publish(next)
}

// HalfThreaded flags only the call that drops, not its traced sibling.
func HalfThreaded(s *Store, sc obs.SpanContext) {
	s.InsertCtx(sc, 3)
	s.RevokeAllCtx(obs.SpanContext{}) // want "drops the span context"
}

// InClosure holds the obligation inside literals that capture the event.
func InClosure(b *bus.Bus, ev bus.Event) func() {
	return func() {
		b.Publish(bus.Event{Topic: "late"}) // want "drops the span context"
	}
}

// NoCarrier has no event or context parameter; fresh roots are fine.
func NoCarrier(b *bus.Bus) {
	b.Publish(bus.Event{Topic: "root"})
}

// Suppressed acknowledges a deliberate re-root.
func Suppressed(b *bus.Bus, ev bus.Event) {
	//dfi:ignore spanctx
	b.Publish(bus.Event{Topic: "reroot"})
}
