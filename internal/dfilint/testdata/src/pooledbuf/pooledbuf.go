// Package pooledbuf exercises the pooledbuf analyzer: sync.Pool scratch
// buffers must not outlive the function that got them.
package pooledbuf

import "sync"

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64)
		return &b
	},
}

type frame struct {
	payload []byte
}

var retained [][]byte

// Encode is the codec idiom the analyzer must stay quiet on: encode into
// the pooled buffer, write the result back through the pooled pointer,
// and return only derived scalars.
func Encode(n int) int {
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, byte(n))
	size := len(b)
	*bp = b[:0]
	bufPool.Put(bp)
	return size
}

// FreshReturn re-establishes ownership: the helper's result is a fresh
// buffer by convention, so returning it is fine.
func FreshReturn() []byte {
	bp := bufPool.Get().(*[]byte)
	out := encodeInto((*bp)[:0])
	out = copyOut(out)
	bufPool.Put(bp)
	return out
}

// LeakReturn hands the pooled backing array to the caller.
func LeakReturn() []byte {
	bp := bufPool.Get().(*[]byte)
	b := append((*bp)[:0], 1, 2, 3)
	bufPool.Put(bp)
	return b // want "escapes via return"
}

// LeakField retains the pooled buffer in a struct that outlives the call.
func LeakField(f *frame) {
	bp := bufPool.Get().(*[]byte)
	f.payload = *bp // want "retained in f.payload"
	bufPool.Put(bp)
}

// LeakIndex parks the pooled buffer in a package-level slice.
func LeakIndex() {
	bp := bufPool.Get().(*[]byte)
	retained[0] = (*bp)[:0] // want "stored into retained"
	bufPool.Put(bp)
}

// LeakSend publishes the pooled buffer to another goroutine.
func LeakSend(ch chan []byte) {
	bp := bufPool.Get().(*[]byte)
	ch <- *bp // want "sent on a channel"
	bufPool.Put(bp)
}

// LeakGo races the pooled buffer against its own recycling.
func LeakGo(sink func([]byte)) {
	bp := bufPool.Get().(*[]byte)
	go sink(*bp) // want "handed to a goroutine"
	bufPool.Put(bp)
}

// DeferPut is the read-path idiom: deferred Put, no escape.
func DeferPut() int {
	bp := bufPool.Get().(*[]byte)
	defer bufPool.Put(bp)
	body := (*bp)[:0]
	return len(body)
}

// Suppressed acknowledges a deliberate leak (a test helper, say).
func Suppressed() []byte {
	bp := bufPool.Get().(*[]byte)
	//dfi:ignore pooledbuf
	return *bp
}

func encodeInto(b []byte) []byte { return append(b, 0xff) }

func copyOut(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
