// Package obs is a fixture stand-in for the real metrics registry: the
// metricname analyzer keys on the package name, the Registry type name and
// its registration method names.
package obs

// Registry mirrors the real registry's registration surface.
type Registry struct{}

// Counter registers a counter.
func (r *Registry) Counter(name, help string) int { return 0 }

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string) int { return 0 }

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) int { return 0 }

// SpanContext mirrors the real propagation handle; the spanctx analyzer
// keys on the package and type name.
type SpanContext struct {
	Trace uint64
	Span  uint64
}
