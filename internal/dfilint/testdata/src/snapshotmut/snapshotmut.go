// Package snapshotmut exercises the snapshotmut analyzer.
package snapshotmut

import "fixture/policy"

// Mutate writes through snapshot rule pointers in every shape the analyzer
// must catch.
func Mutate(d policy.Decision) {
	r := policy.Query()
	r.Priority = 7     // want "write through *policy.Rule"
	r.Src.User = "eve" // want "write through *policy.Rule"
	d.Rule.ID = 1      // want "write through *policy.Rule"
	*r = policy.Rule{} // want "write through *policy.Rule"
	r.Priority++       // want "write through *policy.Rule"
}

// Copy mutates a value copy, which is fine.
func Copy() policy.Rule {
	r := *policy.Query()
	r.Priority = 9
	return r
}

// Suppressed acknowledges a deliberate exception.
func Suppressed() {
	r := policy.Query()
	//dfi:ignore snapshotmut
	r.Priority = 3
}
