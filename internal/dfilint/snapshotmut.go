package dfilint

import (
	"go/ast"
	"go/types"
)

// snapshotMut flags writes through *policy.Rule pointers outside the policy
// package itself. Rules reachable from a published snapshot — directly,
// via Snapshot.Query/All/Get, or via Decision.Rule — are immutable by
// contract (PR 1): a mutation would be visible to every concurrent reader
// of the snapshot and to the PCP's flow-decision cache. Construction and
// pre-publication mutation happen inside package policy, which is exempt.
type snapshotMut struct{}

func newSnapshotMut() *snapshotMut { return &snapshotMut{} }

func (*snapshotMut) Name() string { return "snapshotmut" }

func (*snapshotMut) Doc() string {
	return "flags writes through *policy.Rule pointers (snapshot immutability contract)"
}

func (a *snapshotMut) Run(pass *Pass) {
	if pass.Pkg.Types.Name() == "policy" {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					a.checkWrite(pass, info, lhs)
				}
			case *ast.IncDecStmt:
				a.checkWrite(pass, info, s.X)
			}
			return true
		})
	}
}

// checkWrite reports when the written location is reached through a
// *policy.Rule: any step of the access chain (selector base, index base,
// pointer dereference) typed as a pointer to policy.Rule means the write
// lands inside a rule that may belong to a published snapshot.
func (a *snapshotMut) checkWrite(pass *Pass, info *types.Info, lhs ast.Expr) {
	for {
		switch x := lhs.(type) {
		case *ast.SelectorExpr:
			if isPolicyRulePtr(info.TypeOf(x.X)) {
				pass.Report(lhs.Pos(), "write through *policy.Rule violates the snapshot immutability contract; copy the rule instead")
				return
			}
			lhs = x.X
		case *ast.StarExpr:
			if isPolicyRulePtr(info.TypeOf(x.X)) {
				pass.Report(lhs.Pos(), "write through *policy.Rule violates the snapshot immutability contract; copy the rule instead")
				return
			}
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.ParenExpr:
			lhs = x.X
		default:
			return
		}
	}
}

// isPolicyRulePtr reports whether t is *Rule for a type named Rule declared
// in a package named policy.
func isPolicyRulePtr(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rule" && obj.Pkg() != nil && obj.Pkg().Name() == "policy"
}
