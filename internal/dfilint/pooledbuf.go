package dfilint

import (
	"go/ast"
	"go/types"
)

// pooledBuf flags sync.Pool scratch buffers that escape the function that
// got them. The zero-alloc codec path leans on pooled buffers with a hard
// aliasing contract: a buffer obtained from a pool belongs to the caller
// only until Put returns it; any alias that survives — returned to a
// caller, stored in a struct field or map, sent on a channel, handed to a
// goroutine — is a use-after-recycle data race the moment another
// goroutine Gets the same buffer.
//
// The analysis is per function: pool.Get() results (through the usual
// .(*[]byte) assertion) seed a taint set; aliases extend it through
// dereference, slicing, indexing, address-of, type assertion, composite
// literals, and the built-in append. Results of ordinary calls are NOT
// tainted — encode helpers like AppendMessage follow the convention of
// returning a grown buffer whose ownership the caller re-establishes by
// writing it back through the pooled pointer (*bp = b[:0]), so treating
// their results as fresh keeps the analyzer quiet on the codec itself
// while still catching direct leaks. Escapes are reported at the return,
// assignment, send or go statement; the Put call itself is exempt.
type pooledBuf struct{}

func newPooledBuf() *pooledBuf { return &pooledBuf{} }

func (*pooledBuf) Name() string { return "pooledbuf" }

func (*pooledBuf) Doc() string {
	return "flags sync.Pool scratch buffers escaping the function that obtained them"
}

func (a *pooledBuf) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &poolScan{pass: pass, info: pass.Pkg.Info, tainted: map[types.Object]bool{}}
			s.walk(fd.Body)
		}
	}
}

type poolScan struct {
	pass    *Pass
	info    *types.Info
	tainted map[types.Object]bool
}

// walk traverses in source order so Get assignments taint before later
// statements are checked for escapes.
func (s *poolScan) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			s.assign(x)
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if s.taintedExpr(res) {
					s.pass.Report(x.Pos(), "pooled buffer escapes via return; copy the bytes or drop the pool")
					break
				}
			}
		case *ast.SendStmt:
			if s.taintedExpr(x.Value) {
				s.pass.Report(x.Arrow, "pooled buffer sent on a channel outlives its Put; copy the bytes first")
			}
		case *ast.GoStmt:
			for _, arg := range x.Call.Args {
				if s.taintedExpr(arg) {
					s.pass.Report(x.Pos(), "pooled buffer handed to a goroutine may outlive its Put; copy the bytes first")
					break
				}
			}
		case *ast.DeferStmt:
			// defer pool.Put(bp) is the canonical release; other deferred
			// calls run before the frame dies and cannot retain past it.
			return false
		}
		return true
	})
}

// assign seeds taint from pool.Get results, propagates it through alias
// assignments, and reports taint stored into anything that survives the
// frame (struct fields, map/slice elements, package variables).
func (s *poolScan) assign(x *ast.AssignStmt) {
	for i, lhs := range x.Lhs {
		rhs := pairedRHS(x, i)
		if rhs == nil {
			continue
		}
		fromGet := isPoolGet(s.info, rhs)
		if !fromGet && !s.taintedExpr(rhs) {
			// An untainted right-hand side clears a previously tainted
			// local: buf = encode(...) re-establishes fresh ownership.
			if id, ok := lhs.(*ast.Ident); ok && x.Tok.String() == "=" {
				if obj := s.info.ObjectOf(id); obj != nil {
					delete(s.tainted, obj)
				}
			}
			continue
		}
		switch target := lhs.(type) {
		case *ast.Ident:
			if obj := s.info.ObjectOf(target); obj != nil {
				s.tainted[obj] = true
			}
		case *ast.SelectorExpr:
			s.pass.Report(x.Pos(), "pooled buffer retained in %s outlives its Put; copy the bytes instead", types.ExprString(target))
		case *ast.IndexExpr:
			s.pass.Report(x.Pos(), "pooled buffer stored into %s outlives its Put; copy the bytes instead", types.ExprString(target))
		case *ast.StarExpr:
			// Writing back through the pooled pointer (*bp = b[:0]) is the
			// contract's release idiom, not an escape.
		}
	}
}

// pairedRHS returns the right-hand side feeding Lhs[i], or nil when a
// single multi-value call feeds several targets (call results are
// untainted by convention, so there is nothing to track).
func pairedRHS(x *ast.AssignStmt, i int) ast.Expr {
	if len(x.Rhs) == len(x.Lhs) {
		return x.Rhs[i]
	}
	if len(x.Rhs) == 1 && i == 0 {
		return x.Rhs[0]
	}
	return nil
}

// taintedExpr reports whether e aliases pooled memory under the
// propagation rules in the package comment.
func (s *poolScan) taintedExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := s.info.ObjectOf(x)
		return obj != nil && s.tainted[obj]
	case *ast.ParenExpr:
		return s.taintedExpr(x.X)
	case *ast.StarExpr:
		return s.taintedExpr(x.X)
	case *ast.UnaryExpr:
		return s.taintedExpr(x.X)
	case *ast.SliceExpr:
		return s.taintedExpr(x.X)
	case *ast.IndexExpr:
		return s.taintedExpr(x.X)
	case *ast.TypeAssertExpr:
		return s.taintedExpr(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if s.taintedExpr(elt) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// Only the built-in append keeps its first argument's identity;
		// every other call result is fresh by convention.
		if id, ok := x.Fun.(*ast.Ident); ok && len(x.Args) > 0 {
			if _, isBuiltin := s.info.ObjectOf(id).(*types.Builtin); isBuiltin && id.Name == "append" {
				return s.taintedExpr(x.Args[0])
			}
		}
		return false
	}
	return false
}

// isPoolGet matches pool.Get() and pool.Get().(*T): a no-argument Get
// whose receiver is a sync.Pool.
func isPoolGet(info *types.Info, e ast.Expr) bool {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && isSyncPool(recv.Type())
}

// isSyncPool reports whether t (possibly a pointer) is sync.Pool.
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}
