// Package dfilint is a stdlib-only static-analysis driver enforcing DFI's
// cross-cutting invariants: the allocation-free admission hot path, the
// immutability of policy snapshots, lock discipline around channels and
// callbacks, metric naming, and the admin API's error envelope. It is built
// on go/parser + go/ast + go/types + go/importer alone (no x/tools), per
// the repository's no-external-dependencies rule.
//
// Two comment annotations drive it:
//
//	//dfi:hotpath            (in a function's doc comment) marks the
//	                         function as admission-hot-path code that the
//	                         hotpathalloc analyzer must keep allocation-free.
//	//dfi:ignore <analyzers> suppresses the named analyzers' diagnostics on
//	                         the comment's own line and the line below it.
package dfilint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line: [analyzer]
// message format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Pass is the per-package context handed to an analyzer.
type Pass struct {
	Pkg *Package
	// Report records one diagnostic at pos.
	Report func(pos token.Pos, format string, args ...any)
}

// Analyzer checks one invariant across packages. Run is called once per
// package, in deterministic (sorted import path) order, so analyzers may
// keep cross-package state (metricname's uniqueness check does).
type Analyzer interface {
	Name() string
	Doc() string
	Run(pass *Pass)
}

// NewAnalyzers returns a fresh instance of every analyzer, in the order
// they run.
func NewAnalyzers() []Analyzer {
	return []Analyzer{
		newHotpathAlloc(),
		newSnapshotMut(),
		newLockHeld(),
		newMetricName(),
		newErrEnvelope(),
		newSpanCtx(),
		newPooledBuf(),
	}
}

// Driver runs a set of analyzers over loaded packages and filters the
// findings through //dfi:ignore suppressions.
type Driver struct {
	analyzers []Analyzer
	enabled   map[string]bool // nil enables all
}

// NewDriver returns a driver over the standard analyzer set. enabled maps
// analyzer names to whether they run; a nil map (or a missing key defaulting
// to true) enables everything.
func NewDriver(enabled map[string]bool) *Driver {
	return &Driver{analyzers: NewAnalyzers(), enabled: enabled}
}

// Run analyzes every package and returns the surviving diagnostics sorted
// by position.
func (d *Driver) Run(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range d.analyzers {
			if d.enabled != nil {
				if on, ok := d.enabled[a.Name()]; ok && !on {
					continue
				}
			}
			name := a.Name()
			pass := &Pass{
				Pkg: pkg,
				Report: func(pos token.Pos, format string, args ...any) {
					p := pkg.Fset.Position(pos)
					if ignores.suppressed(p, name) {
						return
					}
					diags = append(diags, Diagnostic{
						Pos:      p,
						Analyzer: name,
						Message:  fmt.Sprintf(format, args...),
					})
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// ignoreSet records, per file and line, which analyzers are suppressed.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) suppressed(p token.Position, analyzer string) bool {
	lines := s[p.Filename]
	if lines == nil {
		return false
	}
	names := lines[p.Line]
	return names != nil && (names[analyzer] || names["all"])
}

// collectIgnores scans a package's comments for //dfi:ignore directives.
// Each directive suppresses the named analyzers (or "all") on its own line
// and on the following line, so it works both as a trailing comment and as
// a line above the offending statement.
func collectIgnores(pkg *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//dfi:ignore")
				if !ok {
					continue
				}
				names := strings.Fields(rest)
				if len(names) == 0 {
					names = []string{"all"}
				}
				p := pkg.Fset.Position(c.Pos())
				lines := set[p.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[p.Filename] = lines
				}
				for _, line := range []int{p.Line, p.Line + 1} {
					byName := lines[line]
					if byName == nil {
						byName = map[string]bool{}
						lines[line] = byName
					}
					for _, n := range names {
						byName[n] = true
					}
				}
			}
		}
	}
	return set
}

// isHotpath reports whether a function's doc comment carries the
// //dfi:hotpath annotation.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == "//dfi:hotpath" {
			return true
		}
	}
	return false
}
