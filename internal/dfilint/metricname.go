package dfilint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// registryMethods are the obs.Registry registration entry points whose
// first argument is the metric name.
var registryMethods = map[string]bool{
	"Counter":      true,
	"CounterFunc":  true,
	"Gauge":        true,
	"GaugeFunc":    true,
	"Histogram":    true,
	"CounterVec":   true,
	"HistogramVec": true,
}

// metricName enforces the obs registry naming contract at every
// registration site: the metric name must be a constant string literal
// (greppable, scrape-stable), must match dfi_[a-z_]+, and must be unique
// across the whole tree — the registry deduplicates by name, so a second
// registration silently aliases the first instrument, which is how two
// subsystems end up incrementing the same counter.
//
// The analyzer keeps cross-package state; the driver runs packages in
// deterministic order, so the "first registered at" site is stable.
type metricName struct {
	seen map[string]token.Position
}

func newMetricName() *metricName { return &metricName{seen: map[string]token.Position{}} }

func (*metricName) Name() string { return "metricname" }

func (*metricName) Doc() string {
	return "enforces dfi_[a-z_]+ literal, globally unique metric names at obs registration sites"
}

func (a *metricName) Run(pass *Pass) {
	if pass.Pkg.Types.Name() == "obs" {
		// The registry implementation itself (and its internal re-
		// registrations, e.g. vec children) is exempt; the contract binds
		// registration sites.
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			if !isObsRegistry(info.TypeOf(sel.X)) {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				pass.Report(call.Args[0].Pos(), "metric name must be a constant string literal at the registration site")
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !validMetricName(name) {
				pass.Report(lit.Pos(), "metric name %q must match dfi_[a-z_]+", name)
			}
			if first, dup := a.seen[name]; dup {
				pass.Report(lit.Pos(), "duplicate metric name %q (first registered at %s)", name, posString(first))
			} else {
				a.seen[name] = pass.Pkg.Fset.Position(lit.Pos())
			}
			return true
		})
	}
}

// validMetricName reports whether name fully matches dfi_[a-z_]+.
func validMetricName(name string) bool {
	const prefix = "dfi_"
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return false
	}
	for _, r := range name[len(prefix):] {
		if r != '_' && (r < 'a' || r > 'z') {
			return false
		}
	}
	return true
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// isObsRegistry reports whether t (possibly a pointer) is a type named
// Registry declared in a package named obs.
func isObsRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}
