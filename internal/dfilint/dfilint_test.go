package dfilint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// loadFixtures loads the testdata mini-module once per test binary.
var fixturePkgs = func() func(t *testing.T) []*Package {
	var pkgs []*Package
	var err error
	loaded := false
	return func(t *testing.T) []*Package {
		t.Helper()
		if !loaded {
			pkgs, err = Load("testdata/src")
			loaded = true
		}
		if err != nil {
			t.Fatalf("loading fixtures: %v", err)
		}
		return pkgs
	}
}()

// want is one expected diagnostic substring at a fixture position.
type want struct {
	file string
	line int
	sub  string
}

// collectWants parses the fixtures' "// want \"substr\" ..." annotations.
func collectWants(t *testing.T, pkgs []*Package) []want {
	t.Helper()
	var wants []want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					subs, err := parseWant(rest)
					if err != nil {
						t.Fatalf("%s:%d: bad want annotation: %v", pos.Filename, pos.Line, err)
					}
					for _, sub := range subs {
						wants = append(wants, want{file: pos.Filename, line: pos.Line, sub: sub})
					}
				}
			}
		}
	}
	return wants
}

// parseWant extracts the quoted substrings of one want annotation.
func parseWant(s string) ([]string, error) {
	var subs []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted string at %q", s)
		}
		end := strings.Index(s[1:], `"`)
		if end < 0 {
			return nil, fmt.Errorf("unterminated quote in %q", s)
		}
		q, err := strconv.Unquote(s[:end+2])
		if err != nil {
			return nil, err
		}
		subs = append(subs, q)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("no expectations")
	}
	return subs, nil
}

// TestFixtures runs every analyzer over the fixture module and requires an
// exact match between diagnostics and // want annotations: each want must
// be produced, and each diagnostic must be expected. Suppressed cases are
// covered by construction — a //dfi:ignore'd violation with no want
// annotation fails the test if the suppression stops working.
func TestFixtures(t *testing.T) {
	pkgs := fixturePkgs(t)
	diags := NewDriver(nil).Run(pkgs)
	wants := collectWants(t, pkgs)

	matchedWant := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.sub) {
				matchedWant[i] = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matchedWant[i] {
			t.Errorf("%s:%d: missing diagnostic containing %q", w.file, w.line, w.sub)
		}
	}
}

// TestAnalyzerCoverage requires every analyzer to fire at least once in the
// fixtures, so a broken analyzer cannot pass as "no findings".
func TestAnalyzerCoverage(t *testing.T) {
	pkgs := fixturePkgs(t)
	diags := NewDriver(nil).Run(pkgs)
	fired := map[string]int{}
	for _, d := range diags {
		fired[d.Analyzer]++
	}
	for _, a := range NewAnalyzers() {
		if fired[a.Name()] == 0 {
			t.Errorf("analyzer %s produced no fixture diagnostics", a.Name())
		}
	}
}

// TestDisableFlag checks per-analyzer enable/disable wiring.
func TestDisableFlag(t *testing.T) {
	pkgs := fixturePkgs(t)
	all := NewDriver(nil).Run(pkgs)
	without := NewDriver(map[string]bool{"hotpathalloc": false}).Run(pkgs)
	for _, d := range without {
		if d.Analyzer == "hotpathalloc" {
			t.Errorf("disabled analyzer still reported: %s", d)
		}
	}
	lost := 0
	for _, d := range all {
		if d.Analyzer == "hotpathalloc" {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("fixture produced no hotpathalloc diagnostics to disable")
	}
	if len(all)-len(without) != lost {
		t.Errorf("disabling hotpathalloc dropped %d diagnostics, want %d", len(all)-len(without), lost)
	}
}

// TestDiagnosticFormat pins the file:line: [analyzer] message rendering.
func TestDiagnosticFormat(t *testing.T) {
	pkgs := fixturePkgs(t)
	diags := NewDriver(nil).Run(pkgs)
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	sorted := sort.SliceIsSorted(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		return diags[i].Pos.Line < diags[j].Pos.Line
	})
	if !sorted {
		t.Error("diagnostics not sorted by position")
	}
	d := diags[0]
	str := d.String()
	wantPrefix := fmt.Sprintf("%s:%d: [%s] ", d.Pos.Filename, d.Pos.Line, d.Analyzer)
	if !strings.HasPrefix(str, wantPrefix) {
		t.Errorf("diagnostic %q does not start with %q", str, wantPrefix)
	}
	if !strings.HasSuffix(str, d.Message) {
		t.Errorf("diagnostic %q does not end with its message", str)
	}
}
