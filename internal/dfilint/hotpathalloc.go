package dfilint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathAlloc flags allocation-inducing constructs inside functions whose
// doc comment carries //dfi:hotpath: fmt calls, non-constant string
// concatenation, make/new/append, slice and map literals (and address-taken
// composite literals), function literals (closure capture), and arguments
// boxed into interface parameters. These are exactly the constructs that
// broke the zero-alloc admission gate during PR 1/PR 2 development; the
// analyzer keeps the next refactor from reintroducing them silently.
type hotpathAlloc struct{}

func newHotpathAlloc() *hotpathAlloc { return &hotpathAlloc{} }

func (*hotpathAlloc) Name() string { return "hotpathalloc" }

func (*hotpathAlloc) Doc() string {
	return "flags allocation-inducing constructs inside //dfi:hotpath functions"
}

func (a *hotpathAlloc) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			a.checkBody(pass, fd.Body)
		}
	}
}

func (a *hotpathAlloc) checkBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			a.checkCall(pass, x)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) && info.Types[x].Value == nil {
				pass.Report(x.OpPos, "string concatenation allocates on the hot path")
			}
		case *ast.FuncLit:
			pass.Report(x.Pos(), "function literal may allocate a closure on the hot path")
		case *ast.CompositeLit:
			switch types.Unalias(info.TypeOf(x)).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Report(x.Pos(), "slice/map composite literal allocates on the hot path")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					pass.Report(x.Pos(), "address of composite literal allocates on the hot path")
				}
			}
		}
		return true
	})
}

func (a *hotpathAlloc) checkCall(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info

	// Builtins.
	if id := calleeIdent(call.Fun); id != nil {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Report(call.Pos(), "make allocates; preallocate outside the hot path or use a pooled buffer")
			case "append":
				pass.Report(call.Pos(), "append may grow its backing array and allocate on the hot path")
			case "new":
				pass.Report(call.Pos(), "new allocates on the hot path")
			}
			return
		}
	}

	// Conversions: T(v) boxing v into an interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isInterfaceType(tv.Type) && boxes(info, call.Args[0]) {
			pass.Report(call.Args[0].Pos(),
				"value of type %s is boxed into an interface and allocates on the hot path",
				info.TypeOf(call.Args[0]))
		}
		return
	}

	// Calls into package fmt.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				pass.Report(call.Pos(), "call to fmt.%s allocates; hot paths must not format", sel.Sel.Name)
			}
		}
	}

	// Arguments boxed into interface parameters.
	sig, ok := types.Unalias(info.TypeOf(call.Fun)).Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			param = types.Unalias(sig.Params().At(sig.Params().Len() - 1).Type()).Underlying().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if isInterfaceType(param) && boxes(info, arg) {
			pass.Report(arg.Pos(),
				"value of type %s is boxed into an interface and allocates on the hot path",
				info.TypeOf(arg))
		}
	}
}

// calleeIdent unwraps the identifier a call expression invokes, if any.
func calleeIdent(fun ast.Expr) *ast.Ident {
	switch f := fun.(type) {
	case *ast.Ident:
		return f
	case *ast.ParenExpr:
		return calleeIdent(f.X)
	}
	return nil
}

// boxes reports whether passing arg to an interface-typed slot heap-
// allocates: true for non-pointer-shaped concrete values, false for nil,
// constants of interface type, existing interfaces and pointer-shaped
// values (pointers, channels, maps, funcs, unsafe.Pointer), whose word fits
// the interface data slot directly.
func boxes(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok {
		return false
	}
	if tv.IsNil() {
		return false
	}
	t := tv.Type
	if t == nil {
		return false
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Interface)
	return ok
}
