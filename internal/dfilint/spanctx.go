package dfilint

import (
	"go/ast"
	"go/types"
	"strings"
)

// spanCtx flags span-context drops. A function that receives a bus.Event
// or an obs.SpanContext holds the causal chain for the work it is doing;
// every downstream Publish call and every *Ctx call it makes must carry
// that context (or a value derived from it, such as ev.Trace or an Event
// literal whose Trace field copies it). Calling Publish with a fresh
// zero-Trace event, or an InsertCtx/RevokeCtx/IsolateCtx with a zero
// SpanContext, silently severs the trace: the downstream spans re-root
// and the sensor→binding→revoke→flush chain the tracing pipeline exists
// to reconstruct falls apart — with no runtime symptom at all.
//
// The analysis is per function: the Event/SpanContext parameters seed a
// taint set, assignments whose right-hand side mentions a tainted value
// extend it (sc := ev.Trace, ev2 := bus.Event{Trace: sc}), and each
// Publish / *Ctx call is then required to mention at least one tainted
// value among its arguments.
type spanCtx struct{}

func newSpanCtx() *spanCtx { return &spanCtx{} }

func (*spanCtx) Name() string { return "spanctx" }

func (*spanCtx) Doc() string {
	return "flags Publish and *Ctx calls that drop a span context the enclosing function received"
}

func (a *spanCtx) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFunc(pass, fd)
		}
	}
}

func (a *spanCtx) checkFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	tainted := make(map[types.Object]bool)
	var carrier string // the first carrier parameter's name, for diagnostics
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil || !isSpanCarrier(obj.Type()) {
				continue
			}
			tainted[obj] = true
			if carrier == "" {
				carrier = name.Name
			}
		}
	}
	if len(tainted) == 0 {
		return
	}
	// Source-order walk: assignments extend the taint set before later
	// calls are checked against it. Function literals are walked too —
	// closures capture the parameters and inherit the obligation.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			taintedRHS := false
			for _, rhs := range x.Rhs {
				if mentionsTainted(info, rhs, tainted) {
					taintedRHS = true
				}
			}
			if taintedRHS {
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			name, ok := calleeName(x)
			if !ok || !isCtxSink(name) {
				return true
			}
			for _, arg := range x.Args {
				if mentionsTainted(info, arg, tainted) {
					return true
				}
			}
			pass.Report(x.Pos(), "%s call drops the span context received via %q; pass it (or a value derived from it) so the trace chain stays intact", name, carrier)
		}
		return true
	})
}

// isCtxSink reports whether a callee name is a span-context sink: bus
// publication or one of the *Ctx entry points (InsertCtx, RevokeCtx,
// IsolateCtx, ...).
func isCtxSink(name string) bool {
	return name == "Publish" || (len(name) > len("Ctx") && strings.HasSuffix(name, "Ctx"))
}

// calleeName extracts the bare name a call invokes, through selectors.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

// mentionsTainted reports whether e references any tainted object.
func mentionsTainted(info *types.Info, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSpanCarrier reports whether t (possibly a pointer) is bus.Event or
// obs.SpanContext. Like the rest of dfilint's type checks it keys on
// package and type name so the fixture module matches too.
func isSpanCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Name() == "Event" && obj.Pkg().Name() == "bus":
		return true
	case obj.Name() == "SpanContext" && obj.Pkg().Name() == "obs":
		return true
	}
	return false
}
