package dfilint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// errEnvelope enforces the /v1 admin API error contract inside packages
// named admin: every error response must flow through the JSON envelope
// helper, so clients always receive {"error":{"code","message"}}. It flags
// calls to http.Error (plain-text errors) and direct WriteHeader calls
// with a constant status >= 400 (ad-hoc error paths that bypass the
// envelope). The envelope helper itself writes the status through a
// variable, so it is naturally exempt; a helper that must hard-code an
// error status carries a //dfi:ignore errenvelope annotation.
type errEnvelope struct{}

func newErrEnvelope() *errEnvelope { return &errEnvelope{} }

func (*errEnvelope) Name() string { return "errenvelope" }

func (*errEnvelope) Doc() string {
	return "admin handlers must emit errors through the /v1 JSON envelope helper"
}

func (a *errEnvelope) Run(pass *Pass) {
	if pass.Pkg.Types.Name() != "admin" {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// http.Error(w, msg, code)
			if id, ok := sel.X.(*ast.Ident); ok && sel.Sel.Name == "Error" {
				if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "net/http" {
					pass.Report(call.Pos(), "http.Error writes a plain-text error; use the /v1 JSON envelope helper")
					return true
				}
			}
			// w.WriteHeader(<constant >= 400>)
			if sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 {
				if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
					if code, ok := constant.Int64Val(tv.Value); ok && code >= 400 {
						pass.Report(call.Pos(), "direct WriteHeader(%d) bypasses the /v1 error envelope; use the envelope helper", code)
					}
				}
			}
			return true
		})
	}
}
