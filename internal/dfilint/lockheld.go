package dfilint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// lockHeld flags operations that can block indefinitely — channel sends,
// bus Publish calls, and calls through function values (user callbacks) —
// while a sync.Mutex or sync.RWMutex is held. This is the proxy/bus/entity
// deadlock class: a callback that re-enters the locking component, or a
// send to an unbuffered channel whose reader needs the same lock, wedges
// the enforcement path. Non-blocking sends (inside a select that has a
// default clause) are exempt.
//
// The analysis is a per-function linear scan: it tracks Lock/RLock and
// Unlock/RUnlock calls on mutex-typed expressions in statement order,
// treats deferred unlocks as held-to-return, and analyzes branches with a
// copy of the entry state. Function literals start with no locks held (they
// run later, on their own goroutine or call stack), except literals invoked
// immediately in place.
type lockHeld struct{}

func newLockHeld() *lockHeld { return &lockHeld{} }

func (*lockHeld) Name() string { return "lockheld" }

func (*lockHeld) Doc() string {
	return "flags channel sends, Publish calls and callback invocations while a mutex is held"
}

func (a *lockHeld) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &lockScan{pass: pass, info: pass.Pkg.Info}
			s.block(fd.Body.List, lockState{})
		}
	}
}

// lockState maps the source rendering of a mutex expression ("m.mu") to
// held; it is copied at branch points.
type lockState map[string]bool

func (st lockState) clone() lockState {
	c := make(lockState, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

// heldNames renders the held locks for diagnostics, sorted.
func (st lockState) heldNames() string {
	names := make([]string, 0, len(st))
	for k := range st {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

type lockScan struct {
	pass *Pass
	info *types.Info
}

func (s *lockScan) block(stmts []ast.Stmt, st lockState) {
	for _, stmt := range stmts {
		s.stmt(stmt, st)
	}
}

func (s *lockScan) stmt(stmt ast.Stmt, st lockState) {
	switch x := stmt.(type) {
	case *ast.ExprStmt:
		s.expr(x.X, st)
	case *ast.SendStmt:
		if len(st) > 0 {
			s.pass.Report(x.Arrow, "channel send while %s is held may block; release the lock first or use a non-blocking select", st.heldNames())
		}
		s.expr(x.Chan, st)
		s.expr(x.Value, st)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			s.expr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the rest of the scan
		// (correct: it is released only at return). Other deferred calls run
		// at return time; analyze their literals fresh but don't flag them.
		if kind, _ := s.lockCall(x.Call); kind == lockRelease {
			return
		}
		for _, arg := range append([]ast.Expr{x.Call.Fun}, x.Call.Args...) {
			if lit, ok := arg.(*ast.FuncLit); ok {
				s.block(lit.Body.List, lockState{})
			}
		}
	case *ast.GoStmt:
		for _, arg := range append([]ast.Expr{x.Call.Fun}, x.Call.Args...) {
			if lit, ok := arg.(*ast.FuncLit); ok {
				s.block(lit.Body.List, lockState{})
			}
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			s.expr(e, st)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			s.stmt(x.Init, st)
		}
		s.expr(x.Cond, st)
		s.block(x.Body.List, st.clone())
		if x.Else != nil {
			s.stmt(x.Else, st.clone())
		}
	case *ast.ForStmt:
		if x.Init != nil {
			s.stmt(x.Init, st)
		}
		if x.Cond != nil {
			s.expr(x.Cond, st)
		}
		s.block(x.Body.List, st.clone())
	case *ast.RangeStmt:
		s.expr(x.X, st)
		s.block(x.Body.List, st.clone())
	case *ast.SwitchStmt:
		if x.Init != nil {
			s.stmt(x.Init, st)
		}
		if x.Tag != nil {
			s.expr(x.Tag, st)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault && len(st) > 0 {
				s.pass.Report(send.Arrow, "blocking select send while %s is held; add a default clause or release the lock", st.heldNames())
			}
			s.block(cc.Body, st.clone())
		}
	case *ast.BlockStmt:
		s.block(x.List, st)
	case *ast.LabeledStmt:
		s.stmt(x.Stmt, st)
	}
}

type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// lockCall classifies a call as a mutex acquire/release, returning the
// rendered receiver expression as the lock's identity.
func (s *lockScan) lockCall(call *ast.CallExpr) (lockKind, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockNone, ""
	}
	fn, ok := s.info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return lockNone, ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isSyncMutex(recv.Type()) {
		return lockNone, ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return lockAcquire, types.ExprString(sel.X)
	case "Unlock", "RUnlock":
		return lockRelease, types.ExprString(sel.X)
	case "TryLock", "TryRLock":
		// Conservatively treated as an acquire: the common pattern checks
		// the result and unlocks on the success path the scan also walks.
		return lockAcquire, types.ExprString(sel.X)
	}
	return lockNone, ""
}

// expr walks an expression, updating lock state for mutex calls and
// flagging Publish/callback invocations made while locks are held.
func (s *lockScan) expr(e ast.Expr, st lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Runs later, on its own stack: fresh lock state.
			s.block(x.Body.List, lockState{})
			return false
		case *ast.CallExpr:
			if kind, name := s.lockCall(x); kind != lockNone {
				if kind == lockAcquire {
					st[name] = true
				} else {
					delete(st, name)
				}
				return true
			}
			if len(st) > 0 {
				s.checkCall(x, st)
			}
		}
		return true
	})
}

// checkCall flags Publish calls and dynamic (function-value) calls under a
// held lock. Static function and method calls — including interface method
// calls — are not flagged: the deadlock class this analyzer targets is
// user-supplied callbacks and event publication, both of which appear as
// func-typed values or bus Publish calls.
func (s *lockScan) checkCall(call *ast.CallExpr, st lockState) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := s.info.Uses[fun].(*types.Var); ok {
			s.pass.Report(call.Pos(), "call through function value %q while %s is held; callbacks must not run under locks", fun.Name, st.heldNames())
		}
	case *ast.SelectorExpr:
		obj := s.info.ObjectOf(fun.Sel)
		switch o := obj.(type) {
		case *types.Func:
			if o.Name() == "Publish" {
				s.pass.Report(call.Pos(), "%s while %s is held; publish after releasing the lock", types.ExprString(fun), st.heldNames())
			}
		case *types.Var:
			// Func-typed struct field or package variable.
			s.pass.Report(call.Pos(), "call through function value %q while %s is held; callbacks must not run under locks", types.ExprString(fun), st.heldNames())
		}
	}
}

// isSyncMutex reports whether t (possibly a pointer) is sync.Mutex or
// sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
