// Package sensors defines DFI's identifier-binding and security event
// types and the sensors that produce them (paper §IV-A). Sensors collect
// bindings only from authoritative sources — DNS for hostname↔IP, DHCP for
// IP↔MAC, endpoint process logs aggregated by the SIEM for user↔host — so
// attackers cannot poison DFI's view of the network from end hosts.
package sensors

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/dfi-sdn/dfi/internal/bus"
	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/policytext/compile"
)

// Bus topics for sensor events.
const (
	TopicDNS        = "sensor.dns"
	TopicDHCP       = "sensor.dhcp"
	TopicAuth       = "sensor.auth"
	TopicProcess    = "sensor.process"
	TopicCompromise = "sensor.compromise"
)

// DNSBinding reports a hostname↔IP binding change from the DNS server.
type DNSBinding struct {
	Host    string
	IP      netpkt.IPv4
	Removed bool
}

// DHCPBinding reports an IP↔MAC lease change from the DHCP server.
type DHCPBinding struct {
	IP      netpkt.IPv4
	MAC     netpkt.MAC
	Removed bool
}

// AuthEvent reports a derived user log-on or log-off on a host.
type AuthEvent struct {
	User     string
	Host     string
	LoggedOn bool
}

// ProcessEvent is a raw endpoint log record: a process was created
// (Delta=+1) or terminated (Delta=-1) for a user on a host.
type ProcessEvent struct {
	User  string
	Host  string
	Delta int
}

// CompromiseEvent reports that an endpoint was flagged as compromised
// (consumed by the quarantine PDP).
type CompromiseEvent struct {
	Host string
	// Cleared reports the quarantine being lifted.
	Cleared bool
}

// DNSSensor publishes DNS bindings collected from the authoritative DNS
// server.
type DNSSensor struct {
	bus *bus.Bus
}

// NewDNSSensor returns a sensor publishing on b.
func NewDNSSensor(b *bus.Bus) *DNSSensor { return &DNSSensor{bus: b} }

// Record publishes one binding observation.
func (s *DNSSensor) Record(host string, ip netpkt.IPv4, removed bool) {
	_ = s.bus.Publish(bus.Event{Topic: TopicDNS, Payload: DNSBinding{Host: host, IP: ip, Removed: removed}})
}

// DHCPSensor publishes lease bindings collected from the authoritative
// DHCP server.
type DHCPSensor struct {
	bus *bus.Bus
}

// NewDHCPSensor returns a sensor publishing on b.
func NewDHCPSensor(b *bus.Bus) *DHCPSensor { return &DHCPSensor{bus: b} }

// Record publishes one lease observation.
func (s *DHCPSensor) Record(ip netpkt.IPv4, mac netpkt.MAC, removed bool) {
	_ = s.bus.Publish(bus.Event{Topic: TopicDHCP, Payload: DHCPBinding{IP: ip, MAC: mac, Removed: removed}})
}

// SIEMSensor implements the paper's user log-on/log-off detection (§IV-A):
// directory services do not track who is logged on, so the sensor counts
// running processes per (user, host) from endpoint logs aggregated by the
// SIEM. A count rising from zero is a log-on; falling to zero is a log-off.
type SIEMSensor struct {
	bus *bus.Bus
	sub *bus.Subscription

	mu     sync.Mutex
	counts map[userHost]int
}

type userHost struct {
	user string
	host string
}

// NewSIEMSensor returns a sensor consuming TopicProcess and publishing
// TopicAuth on b.
func NewSIEMSensor(b *bus.Bus) (*SIEMSensor, error) {
	s := &SIEMSensor{bus: b, counts: make(map[userHost]int)}
	sub, err := b.Subscribe(TopicProcess, func(ev bus.Event) {
		pe, ok := ev.Payload.(ProcessEvent)
		if !ok {
			return
		}
		s.Ingest(pe)
	})
	if err != nil {
		return nil, fmt.Errorf("siem sensor: %w", err)
	}
	s.sub = sub
	return s, nil
}

// Ingest applies one process event and publishes any derived auth event.
func (s *SIEMSensor) Ingest(pe ProcessEvent) {
	key := userHost{user: pe.User, host: pe.Host}
	s.mu.Lock()
	before := s.counts[key]
	after := before + pe.Delta
	if after < 0 {
		after = 0
	}
	if after == 0 {
		delete(s.counts, key)
	} else {
		s.counts[key] = after
	}
	s.mu.Unlock()

	switch {
	case before == 0 && after > 0:
		_ = s.bus.Publish(bus.Event{Topic: TopicAuth, Payload: AuthEvent{User: pe.User, Host: pe.Host, LoggedOn: true}})
	case before > 0 && after == 0:
		_ = s.bus.Publish(bus.Event{Topic: TopicAuth, Payload: AuthEvent{User: pe.User, Host: pe.Host, LoggedOn: false}})
	}
}

// ProcessCount reports the current count for a (user, host) pair.
func (s *SIEMSensor) ProcessCount(user, host string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[userHost{user: user, host: host}]
}

// Close cancels the sensor's subscription.
func (s *SIEMSensor) Close() {
	if s.sub != nil {
		s.sub.Cancel()
	}
}

// AttachEntityManager subscribes em to the identifier-binding topics so
// that sensor events keep its bindings current. It returns a cancel
// function detaching the subscriptions.
func AttachEntityManager(b *bus.Bus, em *entity.Manager) (func(), error) {
	return AttachEntityManagerTraced(b, em, nil)
}

// AttachEntityManagerTraced is AttachEntityManager with causal tracing:
// each binding update is committed to spans as an ("entity",
// "binding_update") span parented on the delivering event's publish span,
// linking the sensor event to the entity-manager mutation it caused. A
// nil span store traces nothing.
func AttachEntityManagerTraced(b *bus.Bus, em *entity.Manager, spans *obs.SpanStore) (func(), error) {
	var subs []*bus.Subscription
	cancel := func() {
		for _, s := range subs {
			s.Cancel()
		}
	}

	dns, err := b.Subscribe(TopicDNS, func(ev bus.Event) {
		bind, ok := ev.Payload.(DNSBinding)
		if !ok {
			return
		}
		obs.WithSpan(spans, ev.Trace, obs.CompEntity, "binding_update",
			fmt.Sprintf("dns host-ip %s=%s removed=%t", bind.Host, bind.IP, bind.Removed),
			func(obs.SpanContext) {
				if bind.Removed {
					em.UnbindHostIP(bind.Host, bind.IP)
				} else {
					em.BindHostIP(bind.Host, bind.IP)
				}
			})
	})
	if err != nil {
		return nil, fmt.Errorf("attach entity manager: %w", err)
	}
	subs = append(subs, dns)

	dhcp, err := b.Subscribe(TopicDHCP, func(ev bus.Event) {
		bind, ok := ev.Payload.(DHCPBinding)
		if !ok {
			return
		}
		obs.WithSpan(spans, ev.Trace, obs.CompEntity, "binding_update",
			fmt.Sprintf("dhcp ip-mac %s=%s removed=%t", bind.IP, bind.MAC, bind.Removed),
			func(obs.SpanContext) {
				if bind.Removed {
					em.UnbindIPMAC(bind.IP, bind.MAC)
				} else {
					em.BindIPMAC(bind.IP, bind.MAC)
				}
			})
	})
	if err != nil {
		cancel()
		return nil, fmt.Errorf("attach entity manager: %w", err)
	}
	subs = append(subs, dhcp)

	auth, err := b.Subscribe(TopicAuth, func(ev bus.Event) {
		ae, ok := ev.Payload.(AuthEvent)
		if !ok {
			return
		}
		obs.WithSpan(spans, ev.Trace, obs.CompEntity, "binding_update",
			fmt.Sprintf("auth user-host %s@%s on=%t", ae.User, ae.Host, ae.LoggedOn),
			func(obs.SpanContext) {
				if ae.LoggedOn {
					em.BindUserHost(ae.User, ae.Host)
				} else {
					em.UnbindUserHost(ae.User, ae.Host)
				}
			})
	})
	if err != nil {
		cancel()
		return nil, fmt.Errorf("attach entity manager: %w", err)
	}
	subs = append(subs, auth)

	return cancel, nil
}

// AttachQuarantineTemplate bridges compromise events to a policy-language
// template: each CompromiseEvent instantiates template(host) on the
// engine (a deny set compiled incrementally into the rule base) and each
// Cleared event retracts that instance. Instantiation failures — e.g. the
// loaded document carries no such template — are counted by the returned
// errs function rather than dropping the subscription. The cancel
// function detaches the bridge.
func AttachQuarantineTemplate(b *bus.Bus, eng *compile.Engine, template string) (cancel func(), errs func() uint64, err error) {
	var failed atomic.Uint64
	sub, err := b.Subscribe(TopicCompromise, func(ev bus.Event) {
		ce, ok := ev.Payload.(CompromiseEvent)
		if !ok {
			return
		}
		var ierr error
		if ce.Cleared {
			_, ierr = eng.Retract(template, ce.Host)
		} else {
			_, ierr = eng.Instantiate(template, ce.Host)
		}
		if ierr != nil {
			failed.Add(1)
		}
	})
	if err != nil {
		return nil, nil, fmt.Errorf("attach quarantine template: %w", err)
	}
	return sub.Cancel, failed.Load, nil
}

// RegisterWireTypes registers every sensor event type with a bus codec so
// that remotely published events (bus.RemotePublisher → bus.ServeSink)
// arrive with their concrete types. Both ends of a remote link must call
// this.
func RegisterWireTypes(codec *bus.Codec) {
	codec.Register("dns-binding", DNSBinding{})
	codec.Register("dhcp-binding", DHCPBinding{})
	codec.Register("auth-event", AuthEvent{})
	codec.Register("process-event", ProcessEvent{})
	codec.Register("compromise-event", CompromiseEvent{})
}
