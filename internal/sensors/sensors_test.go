package sensors

import (
	"sync"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/bus"
	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/policytext/compile"
)

var (
	ipA  = netpkt.MustParseIPv4("10.0.0.1")
	macA = netpkt.MustParseMAC("02:00:00:00:00:01")
)

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", msg)
}

// authCollector records auth events from the bus.
type authCollector struct {
	mu     sync.Mutex
	events []AuthEvent
}

func (c *authCollector) add(ev AuthEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

func (c *authCollector) snapshot() []AuthEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]AuthEvent(nil), c.events...)
}

func subscribeAuth(t *testing.T, b *bus.Bus) *authCollector {
	t.Helper()
	c := &authCollector{}
	if _, err := b.Subscribe(TopicAuth, func(ev bus.Event) {
		if ae, ok := ev.Payload.(AuthEvent); ok {
			c.add(ae)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSIEMProcessCountHeuristic(t *testing.T) {
	b := bus.New()
	defer b.Close()
	collector := subscribeAuth(t, b)
	siem, err := NewSIEMSensor(b)
	if err != nil {
		t.Fatal(err)
	}
	defer siem.Close()

	// First process: log-on.
	siem.Ingest(ProcessEvent{User: "alice", Host: "h1", Delta: +1})
	// More processes: no additional event.
	siem.Ingest(ProcessEvent{User: "alice", Host: "h1", Delta: +2})
	// Down to one: still logged on.
	siem.Ingest(ProcessEvent{User: "alice", Host: "h1", Delta: -2})
	// Last process exits: log-off.
	siem.Ingest(ProcessEvent{User: "alice", Host: "h1", Delta: -1})

	waitFor(t, func() bool { return len(collector.snapshot()) == 2 }, "2 auth events")
	events := collector.snapshot()
	if !events[0].LoggedOn || events[0].User != "alice" || events[0].Host != "h1" {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[1].LoggedOn {
		t.Fatalf("second event = %+v, want log-off", events[1])
	}
}

func TestSIEMPerHostIndependence(t *testing.T) {
	b := bus.New()
	defer b.Close()
	collector := subscribeAuth(t, b)
	siem, err := NewSIEMSensor(b)
	if err != nil {
		t.Fatal(err)
	}
	defer siem.Close()

	siem.Ingest(ProcessEvent{User: "alice", Host: "h1", Delta: +1})
	siem.Ingest(ProcessEvent{User: "alice", Host: "h2", Delta: +1})
	siem.Ingest(ProcessEvent{User: "alice", Host: "h1", Delta: -1})

	waitFor(t, func() bool { return len(collector.snapshot()) == 3 }, "3 auth events")
	if siem.ProcessCount("alice", "h2") != 1 {
		t.Fatal("h2 count affected by h1 events")
	}
	if siem.ProcessCount("alice", "h1") != 0 {
		t.Fatal("h1 count not zeroed")
	}
}

func TestSIEMCountNeverNegative(t *testing.T) {
	b := bus.New()
	defer b.Close()
	collector := subscribeAuth(t, b)
	siem, err := NewSIEMSensor(b)
	if err != nil {
		t.Fatal(err)
	}
	defer siem.Close()
	// A stray exit with no matching create must not wedge the counter.
	siem.Ingest(ProcessEvent{User: "bob", Host: "h1", Delta: -1})
	siem.Ingest(ProcessEvent{User: "bob", Host: "h1", Delta: +1})
	waitFor(t, func() bool { return len(collector.snapshot()) == 1 }, "log-on after stray exit")
	if !collector.snapshot()[0].LoggedOn {
		t.Fatal("want log-on")
	}
}

func TestSIEMViaBusIngestion(t *testing.T) {
	b := bus.New()
	defer b.Close()
	collector := subscribeAuth(t, b)
	siem, err := NewSIEMSensor(b)
	if err != nil {
		t.Fatal(err)
	}
	defer siem.Close()
	// Endpoints publish raw process events on the bus; the SIEM derives
	// log-ons from them.
	if err := b.Publish(bus.Event{Topic: TopicProcess,
		Payload: ProcessEvent{User: "carol", Host: "h3", Delta: +1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(collector.snapshot()) == 1 }, "derived log-on")
}

func TestDNSAndDHCPSensorsPublish(t *testing.T) {
	b := bus.New()
	defer b.Close()
	var mu sync.Mutex
	var dnsEvents []DNSBinding
	var dhcpEvents []DHCPBinding
	if _, err := b.Subscribe(TopicDNS, func(ev bus.Event) {
		if d, ok := ev.Payload.(DNSBinding); ok {
			mu.Lock()
			dnsEvents = append(dnsEvents, d)
			mu.Unlock()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(TopicDHCP, func(ev bus.Event) {
		if d, ok := ev.Payload.(DHCPBinding); ok {
			mu.Lock()
			dhcpEvents = append(dhcpEvents, d)
			mu.Unlock()
		}
	}); err != nil {
		t.Fatal(err)
	}

	NewDNSSensor(b).Record("h1", ipA, false)
	NewDHCPSensor(b).Record(ipA, macA, false)

	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(dnsEvents) == 1 && len(dhcpEvents) == 1
	}, "sensor events")
	mu.Lock()
	defer mu.Unlock()
	if dnsEvents[0].Host != "h1" || dnsEvents[0].IP != ipA {
		t.Fatalf("dns event = %+v", dnsEvents[0])
	}
	if dhcpEvents[0].MAC != macA {
		t.Fatalf("dhcp event = %+v", dhcpEvents[0])
	}
}

func TestAttachEntityManagerEndToEnd(t *testing.T) {
	b := bus.New()
	defer b.Close()
	em := entity.NewManager()
	cancel, err := AttachEntityManager(b, em)
	if err != nil {
		t.Fatal(err)
	}

	NewDHCPSensor(b).Record(ipA, macA, false)
	NewDNSSensor(b).Record("h1", ipA, false)
	if err := b.Publish(bus.Event{Topic: TopicAuth,
		Payload: AuthEvent{User: "alice", Host: "h1", LoggedOn: true}}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool {
		res, err := em.Resolve(entity.Observed{MAC: macA, HasIP: true, IP: ipA})
		return err == nil && res.Host == "h1" && len(res.Users) == 1
	}, "full binding chain via bus")

	// Removal events unbind.
	NewDNSSensor(b).Record("h1", ipA, true)
	waitFor(t, func() bool {
		_, ok := em.HostOf(ipA)
		return !ok
	}, "DNS unbind")

	// After cancel, events stop flowing.
	cancel()
	NewDNSSensor(b).Record("h2", ipA, false)
	time.Sleep(20 * time.Millisecond)
	if _, ok := em.HostOf(ipA); ok {
		t.Fatal("binding applied after cancel")
	}
}

func TestAttachQuarantineTemplate(t *testing.T) {
	b := bus.New()
	pm := policy.NewManager()
	eng := compile.NewEngine(pm, nil)
	if _, err := eng.SetSource(`
pdp quarantine priority 900
template quarantine(h) { deny from host $h; deny to host $h }
`); err != nil {
		t.Fatal(err)
	}
	cancel, errCount, err := AttachQuarantineTemplate(b, eng, "quarantine")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	publish := func(host string, cleared bool) {
		t.Helper()
		if err := b.Publish(bus.Event{Topic: TopicCompromise,
			Payload: CompromiseEvent{Host: host, Cleared: cleared}}); err != nil {
			t.Fatal(err)
		}
	}

	publish("h7", false)
	waitFor(t, func() bool { return pm.Len() == 2 }, "quarantine rules installed")
	if got := eng.Instances(); len(got) != 1 || got[0] != "quarantine(h7)" {
		t.Fatalf("instances = %v", got)
	}

	// A second compromise of the same host is idempotent.
	publish("h7", false)
	publish("h9", false)
	waitFor(t, func() bool { return pm.Len() == 4 }, "second host quarantined")

	publish("h7", true)
	waitFor(t, func() bool { return pm.Len() == 2 }, "cleared host released")
	if got := eng.Instances(); len(got) != 1 || got[0] != "quarantine(h9)" {
		t.Fatalf("instances = %v", got)
	}
	if errCount() != 0 {
		t.Fatalf("errors = %d", errCount())
	}

	// An engine without the template counts failures instead of crashing.
	if _, err := eng.SetSource("pdp quarantine priority 900\n"); err != nil {
		t.Fatal(err)
	}
	publish("h11", false)
	waitFor(t, func() bool { return errCount() == 1 }, "missing template counted")

	// After cancel, events stop flowing.
	cancel()
	publish("h12", false)
	time.Sleep(20 * time.Millisecond)
	if errCount() != 1 {
		t.Fatal("event processed after cancel")
	}
}
