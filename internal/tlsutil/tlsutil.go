// Package tlsutil provides the TLS plumbing for DFI's control-channel
// connections (paper §IV: "The sockets may be optionally secured using TLS
// to encrypt all exchanged OpenFlow messages"): certificate generation for
// a private control-plane CA, and ready-made server/client configurations
// for dfid, switchd and controllerd.
package tlsutil

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"time"
)

// CA is a private certificate authority for a DFI control plane.
type CA struct {
	cert *x509.Certificate
	key  *ecdsa.PrivateKey
	pem  []byte
}

// NewCA creates a CA valid for the given lifetime.
func NewCA(commonName string, lifetime time.Duration) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: ca key: %w", err)
	}
	serial, err := randomSerial()
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{"DFI"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(lifetime),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: ca cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: ca parse: %w", err)
	}
	return &CA{
		cert: cert,
		key:  key,
		pem:  pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
	}, nil
}

// CertPEM returns the CA certificate in PEM form.
func (c *CA) CertPEM() []byte { return append([]byte(nil), c.pem...) }

// Pool returns a certificate pool trusting only this CA.
func (c *CA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(c.cert)
	return pool
}

// Issue creates a leaf certificate for the given DNS names and IPs, usable
// for both server and client authentication.
func (c *CA) Issue(commonName string, dnsNames []string, ips []net.IP, lifetime time.Duration) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("tlsutil: leaf key: %w", err)
	}
	serial, err := randomSerial()
	if err != nil {
		return tls.Certificate{}, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: commonName, Organization: []string{"DFI"}},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(lifetime),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		DNSNames:     dnsNames,
		IPAddresses:  ips,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, c.cert, &key.PublicKey, c.key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("tlsutil: leaf cert: %w", err)
	}
	return tls.Certificate{
		Certificate: [][]byte{der, c.cert.Raw},
		PrivateKey:  key,
	}, nil
}

// ServerConfig returns a TLS config for accepting OpenFlow connections,
// requiring client certificates from the same CA (mutual TLS, so rogue
// endpoints cannot impersonate switches to the control plane).
func (c *CA) ServerConfig(cert tls.Certificate) *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    c.Pool(),
		MinVersion:   tls.VersionTLS13,
	}
}

// ClientConfig returns a TLS config for dialing a control plane presenting
// a certificate from the same CA.
func (c *CA) ClientConfig(cert tls.Certificate, serverName string) *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		RootCAs:      c.Pool(),
		ServerName:   serverName,
		MinVersion:   tls.VersionTLS13,
	}
}

// WriteFiles persists a certificate and its key as PEM files (0600 key),
// for use with dfid's -tls-cert/-tls-key flags.
func WriteFiles(cert tls.Certificate, certPath, keyPath string) error {
	var certPEM []byte
	for _, der := range cert.Certificate {
		certPEM = append(certPEM, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})...)
	}
	keyDER, err := x509.MarshalPKCS8PrivateKey(cert.PrivateKey)
	if err != nil {
		return fmt.Errorf("tlsutil: marshal key: %w", err)
	}
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: keyDER})
	if err := os.WriteFile(certPath, certPEM, 0o644); err != nil {
		return fmt.Errorf("tlsutil: write cert: %w", err)
	}
	if err := os.WriteFile(keyPath, keyPEM, 0o600); err != nil {
		return fmt.Errorf("tlsutil: write key: %w", err)
	}
	return nil
}

// LoadServerConfig builds a server TLS config from PEM files; caPath may
// be empty to skip client-certificate verification.
func LoadServerConfig(certPath, keyPath, caPath string) (*tls.Config, error) {
	cert, err := tls.LoadX509KeyPair(certPath, keyPath)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: load keypair: %w", err)
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS13,
	}
	if caPath != "" {
		pool, err := loadPool(caPath)
		if err != nil {
			return nil, err
		}
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
		cfg.ClientCAs = pool
	}
	return cfg, nil
}

// LoadClientConfig builds a client TLS config from PEM files; certPath and
// keyPath may be empty when the server does not require client
// certificates.
func LoadClientConfig(caPath, certPath, keyPath, serverName string) (*tls.Config, error) {
	pool, err := loadPool(caPath)
	if err != nil {
		return nil, err
	}
	cfg := &tls.Config{
		RootCAs:    pool,
		ServerName: serverName,
		MinVersion: tls.VersionTLS13,
	}
	if certPath != "" {
		cert, err := tls.LoadX509KeyPair(certPath, keyPath)
		if err != nil {
			return nil, fmt.Errorf("tlsutil: load keypair: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	return cfg, nil
}

func loadPool(caPath string) (*x509.CertPool, error) {
	caPEM, err := os.ReadFile(caPath)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: read ca: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(caPEM) {
		return nil, fmt.Errorf("tlsutil: no certificates in %s", caPath)
	}
	return pool, nil
}

func randomSerial() (*big.Int, error) {
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 127))
	if err != nil {
		return nil, fmt.Errorf("tlsutil: serial: %w", err)
	}
	return serial, nil
}
