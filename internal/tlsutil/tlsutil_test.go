package tlsutil

import (
	"crypto/tls"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/openflow"
)

func TestMutualTLSOpenFlowExchange(t *testing.T) {
	ca, err := NewCA("dfi-test-ca", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.Issue("dfid", []string{"dfid"}, []net.IP{net.IPv4(127, 0, 0, 1)}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clientCert, err := ca.Issue("switch-1", nil, nil, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	lis, err := tls.Listen("tcp", "127.0.0.1:0", ca.ServerConfig(serverCert))
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	serverErr := make(chan error, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		defer conn.Close()
		c := openflow.NewConn(conn)
		xid, msg, err := c.Recv()
		if err != nil {
			serverErr <- err
			return
		}
		if _, ok := msg.(*openflow.Hello); !ok {
			serverErr <- io.ErrUnexpectedEOF
			return
		}
		serverErr <- c.SendXID(xid, &openflow.Hello{})
	}()

	conn, err := tls.Dial("tcp", lis.Addr().String(), ca.ClientConfig(clientCert, "dfid"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := openflow.NewConn(conn)
	if _, err := c.Send(&openflow.Hello{}); err != nil {
		t.Fatal(err)
	}
	if _, msg, err := c.Recv(); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*openflow.Hello); !ok {
		t.Fatalf("got %T", msg)
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsClientWithoutCert(t *testing.T) {
	ca, err := NewCA("dfi-test-ca", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.Issue("dfid", nil, []net.IP{net.IPv4(127, 0, 0, 1)}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := tls.Listen("tcp", "127.0.0.1:0", ca.ServerConfig(serverCert))
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		// Force the handshake; it must fail without a client cert.
		_, _ = conn.Read(make([]byte, 1))
		conn.Close()
	}()

	conn, err := tls.Dial("tcp", lis.Addr().String(), &tls.Config{
		RootCAs:    ca.Pool(),
		ServerName: "dfid",
		MinVersion: tls.VersionTLS13,
	})
	if err == nil {
		// TLS 1.3 may defer the client-cert failure to first use.
		if _, werr := conn.Write([]byte("x")); werr == nil {
			_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, rerr := conn.Read(make([]byte, 1)); rerr == nil {
				t.Fatal("connection succeeded without a client certificate")
			}
		}
		conn.Close()
	}
}

func TestRejectsForeignCA(t *testing.T) {
	ca1, err := NewCA("ca-1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := NewCA("ca-2", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca1.Issue("dfid", nil, []net.IP{net.IPv4(127, 0, 0, 1)}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	foreignClient, err := ca2.Issue("intruder", nil, nil, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	lis, err := tls.Listen("tcp", "127.0.0.1:0", ca1.ServerConfig(serverCert))
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		_, _ = conn.Read(make([]byte, 1))
		conn.Close()
	}()

	conn, err := tls.Dial("tcp", lis.Addr().String(), ca1.ClientConfig(foreignClient, "dfid"))
	if err != nil {
		return // rejected at handshake: good
	}
	defer conn.Close()
	if _, werr := conn.Write([]byte("x")); werr == nil {
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, rerr := conn.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("foreign-CA client accepted")
		}
	}
}

func TestWriteAndLoadFiles(t *testing.T) {
	dir := t.TempDir()
	ca, err := NewCA("dfi-test-ca", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.Issue("dfid", nil, []net.IP{net.IPv4(127, 0, 0, 1)}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	certPath := filepath.Join(dir, "dfid.pem")
	keyPath := filepath.Join(dir, "dfid.key")
	caPath := filepath.Join(dir, "ca.pem")
	if err := WriteFiles(cert, certPath, keyPath); err != nil {
		t.Fatal(err)
	}
	if err := writeCA(ca, caPath); err != nil {
		t.Fatal(err)
	}

	serverCfg, err := LoadServerConfig(certPath, keyPath, caPath)
	if err != nil {
		t.Fatal(err)
	}
	if serverCfg.ClientAuth != tls.RequireAndVerifyClientCert {
		t.Fatal("client auth not required with a CA configured")
	}
	clientCfg, err := LoadClientConfig(caPath, certPath, keyPath, "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}

	// The loaded configs must complete a real handshake.
	lis, err := tls.Listen("tcp", "127.0.0.1:0", serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 2)
		_, err = io.ReadFull(conn, buf)
		done <- err
	}()
	conn, err := tls.Dial("tcp", lis.Addr().String(), clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Bad paths fail cleanly.
	if _, err := LoadServerConfig("/nope", "/nope", ""); err == nil {
		t.Fatal("missing keypair accepted")
	}
	if _, err := LoadClientConfig("/nope", "", "", ""); err == nil {
		t.Fatal("missing CA accepted")
	}
}

func writeCA(ca *CA, path string) error {
	return os.WriteFile(path, ca.CertPEM(), 0o644)
}
