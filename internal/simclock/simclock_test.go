package simclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)

func TestRealClockNow(t *testing.T) {
	var c Real
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestSimulatedNowStartsAtEpoch(t *testing.T) {
	s := NewSimulated(epoch)
	if got := s.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
}

func TestScheduleAtOrdering(t *testing.T) {
	s := NewSimulated(epoch)
	var mu sync.Mutex
	var order []string
	record := func(name string) func() {
		return func() {
			mu.Lock()
			defer mu.Unlock()
			order = append(order, name)
		}
	}
	s.ScheduleAt(epoch.Add(2*time.Second), record("b"))
	s.ScheduleAt(epoch.Add(1*time.Second), record("a"))
	s.ScheduleAt(epoch.Add(3*time.Second), record("c"))
	s.Run()
	mu.Lock()
	defer mu.Unlock()
	want := []string{"a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleSameTimeFIFO(t *testing.T) {
	s := NewSimulated(epoch)
	var mu sync.Mutex
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.ScheduleAt(epoch.Add(time.Second), func() {
			mu.Lock()
			defer mu.Unlock()
			order = append(order, i)
		})
	}
	s.Run()
	mu.Lock()
	defer mu.Unlock()
	// Same-time events start in FIFO order; since each callback only
	// appends, the driver serializes them one at a time (active returns to
	// zero between each), preserving order.
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := NewSimulated(epoch)
	var woke time.Time
	s.Go(func() {
		s.Sleep(42 * time.Minute)
		woke = s.Now()
	})
	end := s.Run()
	want := epoch.Add(42 * time.Minute)
	if !woke.Equal(want) {
		t.Fatalf("woke at %v, want %v", woke, want)
	}
	if !end.Equal(want) {
		t.Fatalf("Run() = %v, want %v", end, want)
	}
}

func TestSleepZeroReturnsImmediately(t *testing.T) {
	s := NewSimulated(epoch)
	done := false
	s.Go(func() {
		s.Sleep(0)
		s.Sleep(-time.Second)
		done = true
	})
	s.Run()
	if !done {
		t.Fatal("goroutine did not complete")
	}
	if got := s.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want unchanged epoch %v", got, epoch)
	}
}

func TestInterleavedSleepers(t *testing.T) {
	s := NewSimulated(epoch)
	var mu sync.Mutex
	var order []string
	sleeper := func(name string, step time.Duration, n int) func() {
		return func() {
			for i := 0; i < n; i++ {
				s.Sleep(step)
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
			}
		}
	}
	s.Go(sleeper("fast", time.Second, 3))   // wakes at 1s, 2s, 3s
	s.Go(sleeper("slow", 2*time.Second, 1)) // wakes at 2s
	s.Run()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 4 {
		t.Fatalf("got %d wakeups, want 4: %v", len(order), order)
	}
	if order[0] != "fast" {
		t.Fatalf("first wake = %q, want fast", order[0])
	}
	if order[3] != "fast" {
		t.Fatalf("last wake = %q, want fast (3s)", order[3])
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := NewSimulated(epoch)
	var ran atomic.Int32
	s.ScheduleAt(epoch.Add(time.Hour), func() { ran.Add(1) })
	s.ScheduleAt(epoch.Add(3*time.Hour), func() { ran.Add(1) })
	deadline := epoch.Add(2 * time.Hour)
	end := s.RunUntil(deadline)
	if !end.Equal(deadline) {
		t.Fatalf("RunUntil = %v, want %v", end, deadline)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("ran %d events before deadline, want 1", got)
	}
	// Continuing past the deadline runs the remaining event.
	s.Run()
	if got := ran.Load(); got != 2 {
		t.Fatalf("ran %d events total, want 2", got)
	}
}

func TestScheduleAfterUsesCurrentVirtualTime(t *testing.T) {
	s := NewSimulated(epoch)
	var secondAt time.Time
	s.ScheduleAt(epoch.Add(time.Minute), func() {
		s.ScheduleAfter(time.Minute, func() { secondAt = s.Now() })
	})
	s.Run()
	want := epoch.Add(2 * time.Minute)
	if !secondAt.Equal(want) {
		t.Fatalf("nested event at %v, want %v", secondAt, want)
	}
}

func TestScheduleAtPastRunsAtCurrentTime(t *testing.T) {
	s := NewSimulated(epoch)
	var at time.Time
	s.ScheduleAt(epoch.Add(10*time.Minute), func() {
		s.ScheduleAt(epoch, func() { at = s.Now() }) // in the past
	})
	s.Run()
	want := epoch.Add(10 * time.Minute)
	if !at.Equal(want) {
		t.Fatalf("past-scheduled event ran at %v, want clamped to %v", at, want)
	}
}

func TestManyGoroutinesDeterministic(t *testing.T) {
	run := func() time.Time {
		s := NewSimulated(epoch)
		for i := 0; i < 50; i++ {
			d := time.Duration(i+1) * time.Second
			s.Go(func() {
				for j := 0; j < 5; j++ {
					s.Sleep(d)
				}
			})
		}
		return s.Run()
	}
	first := run()
	want := epoch.Add(250 * time.Second) // slowest: 50s × 5
	if !first.Equal(want) {
		t.Fatalf("final time %v, want %v", first, want)
	}
	if second := run(); !second.Equal(first) {
		t.Fatalf("non-deterministic: %v vs %v", first, second)
	}
}

func TestSimulatedAfterFunc(t *testing.T) {
	epoch := time.Unix(0, 0)
	s := NewSimulated(epoch)
	var fired []time.Time
	s.AfterFunc(5*time.Second, func() { fired = append(fired, s.Now()) })
	cancelled := s.AfterFunc(3*time.Second, func() { t.Error("cancelled timer fired") })
	cancelled()
	end := s.Run()
	if len(fired) != 1 || !fired[0].Equal(epoch.Add(5*time.Second)) {
		t.Fatalf("fired = %v", fired)
	}
	if !end.Equal(epoch.Add(5 * time.Second)) {
		t.Fatalf("end = %v", end)
	}
}

func TestSimulatedAfterFuncReschedulesFromCallback(t *testing.T) {
	epoch := time.Unix(0, 0)
	s := NewSimulated(epoch)
	var fires int
	var tick func()
	tick = func() {
		fires++
		if fires < 3 {
			s.AfterFunc(time.Minute, tick)
		}
	}
	s.AfterFunc(time.Minute, tick)
	end := s.Run()
	if fires != 3 {
		t.Fatalf("fires = %d", fires)
	}
	if !end.Equal(epoch.Add(3 * time.Minute)) {
		t.Fatalf("end = %v", end)
	}
}

func TestRealAfterFunc(t *testing.T) {
	done := make(chan struct{})
	Real{}.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
	cancel := Real{}.AfterFunc(time.Hour, func() { t.Error("cancelled timer fired") })
	cancel()
}
