// Package simclock provides real and simulated (discrete-event) clocks.
//
// Components that need time take a Clock so that the security evaluation
// (a simulated business day of user activity and worm propagation) can run
// deterministically in virtual time, while production deployments use the
// wall clock.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts the passage of time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for d on this clock.
	Sleep(d time.Duration)
}

// Scheduler is a Clock that can also run callbacks at future instants.
// Components that react to the passage of time — temporal policy windows
// activating, leases expiring — take a Scheduler so tests can drive them
// deterministically with a Simulated clock while production uses Real.
type Scheduler interface {
	Clock
	// AfterFunc arranges for fn to run once d has elapsed on this clock
	// and returns a cancel function. Cancel is best-effort: it guarantees
	// fn will not start after cancel returns, but fn may already be
	// running concurrently with the cancel call.
	AfterFunc(d time.Duration, fn func()) (cancel func())
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}
var _ Scheduler = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// AfterFunc implements Scheduler on the wall clock.
func (Real) AfterFunc(d time.Duration, fn func()) (cancel func()) {
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}

// Simulated is a deterministic discrete-event Clock. Goroutines that
// participate in simulated time must be started with Go and may only block
// via Sleep (or by returning); the driver advances virtual time whenever
// every participating goroutine is asleep.
//
// The zero value is not usable; construct with NewSimulated.
type Simulated struct {
	mu     sync.Mutex
	cond   *sync.Cond
	now    time.Time
	active int
	queue  entryHeap
	seq    uint64
}

// NewSimulated returns a Simulated clock starting at the given epoch.
func NewSimulated(epoch time.Time) *Simulated {
	s := &Simulated{now: epoch}
	s.cond = sync.NewCond(&s.mu)
	return s
}

var _ Clock = (*Simulated)(nil)

// Now implements Clock.
func (s *Simulated) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep implements Clock. It must only be called from a goroutine started
// via Go (or from a ScheduleAt callback).
func (s *Simulated) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	s.mu.Lock()
	heap.Push(&s.queue, &entry{at: s.now.Add(d), seq: s.seq, wake: ch})
	s.seq++
	s.active--
	s.cond.Broadcast()
	s.mu.Unlock()
	<-ch
}

// Go starts fn as a goroutine participating in simulated time. The driver
// will not advance the clock while fn is runnable.
func (s *Simulated) Go(fn func()) {
	s.mu.Lock()
	s.active++
	s.mu.Unlock()
	go func() {
		defer s.exit()
		fn()
	}()
}

func (s *Simulated) exit() {
	s.mu.Lock()
	s.active--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// ScheduleAt arranges for fn to run (as a participating goroutine) when
// virtual time reaches at. Times in the past run at the current time.
func (s *Simulated) ScheduleAt(at time.Time, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if at.Before(s.now) {
		at = s.now
	}
	heap.Push(&s.queue, &entry{at: at, seq: s.seq, fn: fn})
	s.seq++
}

// ScheduleAfter arranges for fn to run d after the current virtual time.
func (s *Simulated) ScheduleAfter(d time.Duration, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	heap.Push(&s.queue, &entry{at: s.now.Add(d), seq: s.seq, fn: fn})
	s.seq++
}

var _ Scheduler = (*Simulated)(nil)

// AfterFunc implements Scheduler in virtual time: fn runs as a
// participating goroutine when the driver reaches now+d, unless cancelled
// first.
func (s *Simulated) AfterFunc(d time.Duration, fn func()) (cancel func()) {
	var (
		mu        sync.Mutex
		cancelled bool
	)
	s.ScheduleAfter(d, func() {
		mu.Lock()
		dead := cancelled
		mu.Unlock()
		if !dead {
			fn()
		}
	})
	return func() {
		mu.Lock()
		cancelled = true
		mu.Unlock()
	}
}

// RunUntil drives the simulation until virtual time would pass deadline or
// no further events exist. It returns the virtual time at which it stopped.
// RunUntil must not be called concurrently with itself.
func (s *Simulated) RunUntil(deadline time.Time) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for s.active > 0 {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 {
			return s.now
		}
		next := s.queue[0]
		if next.at.After(deadline) {
			s.now = deadline
			return s.now
		}
		heap.Pop(&s.queue)
		if next.at.After(s.now) {
			s.now = next.at
		}
		s.active++
		if next.wake != nil {
			close(next.wake)
		} else {
			fn := next.fn
			go func() {
				defer s.exit()
				fn()
			}()
		}
	}
}

// Run drives the simulation until no events remain, returning the final
// virtual time.
func (s *Simulated) Run() time.Time {
	// A deadline far enough out to be "forever" for any simulation here.
	return s.RunUntil(s.Now().AddDate(1000, 0, 0))
}

type entry struct {
	at   time.Time
	seq  uint64
	wake chan struct{}
	fn   func()
}

type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }

func (h entryHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *entryHeap) Push(x any) { *h = append(*h, x.(*entry)) }

func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
