package services

import (
	"sync"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// DNSObserver is notified of record changes; the DNS binding sensor
// implements this.
type DNSObserver func(host string, ip netpkt.IPv4, removed bool)

// DNSServer holds A records and their reverse mappings; it is the
// authoritative source for hostname↔IP bindings.
type DNSServer struct {
	observer DNSObserver

	mu  sync.Mutex
	a   map[string]map[netpkt.IPv4]struct{}
	ptr map[netpkt.IPv4]string
}

// NewDNSServer returns an empty server. The observer may be nil.
func NewDNSServer(observer DNSObserver) *DNSServer {
	return &DNSServer{
		observer: observer,
		a:        make(map[string]map[netpkt.IPv4]struct{}),
		ptr:      make(map[netpkt.IPv4]string),
	}
}

// Register adds an A record host→ip (and the PTR back-reference). If ip
// previously resolved to another host, that record is replaced (dynamic
// DNS update).
func (d *DNSServer) Register(host string, ip netpkt.IPv4) {
	d.mu.Lock()
	var removedHost string
	if prev, ok := d.ptr[ip]; ok && prev != host {
		removedHost = prev
		if set := d.a[prev]; set != nil {
			delete(set, ip)
			if len(set) == 0 {
				delete(d.a, prev)
			}
		}
	}
	if d.a[host] == nil {
		d.a[host] = make(map[netpkt.IPv4]struct{})
	}
	d.a[host][ip] = struct{}{}
	d.ptr[ip] = host
	obs := d.observer
	d.mu.Unlock()

	if obs != nil {
		if removedHost != "" {
			obs(removedHost, ip, true)
		}
		obs(host, ip, false)
	}
}

// Unregister removes the A record host→ip.
func (d *DNSServer) Unregister(host string, ip netpkt.IPv4) {
	d.mu.Lock()
	removed := false
	if set := d.a[host]; set != nil {
		if _, ok := set[ip]; ok {
			removed = true
			delete(set, ip)
			if len(set) == 0 {
				delete(d.a, host)
			}
			if d.ptr[ip] == host {
				delete(d.ptr, ip)
			}
		}
	}
	obs := d.observer
	d.mu.Unlock()

	if removed && obs != nil {
		obs(host, ip, true)
	}
}

// LookupA returns the addresses for host.
func (d *DNSServer) LookupA(host string) []netpkt.IPv4 {
	d.mu.Lock()
	defer d.mu.Unlock()
	ips := make([]netpkt.IPv4, 0, len(d.a[host]))
	for ip := range d.a[host] {
		ips = append(ips, ip)
	}
	return ips
}

// LookupPTR returns the hostname for ip.
func (d *DNSServer) LookupPTR(ip netpkt.IPv4) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.ptr[ip]
	return h, ok
}

// Records returns the number of A records.
func (d *DNSServer) Records() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, set := range d.a {
		n += len(set)
	}
	return n
}
