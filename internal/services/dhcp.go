// Package services implements simulated authoritative enterprise services
// — DHCP, DNS and a directory (Active Directory stand-in) — that anchor
// DFI's identifier-binding sensors and drive the security evaluation
// testbed. Each service notifies an observer (the corresponding sensor) of
// every binding change, making it the authoritative source the paper
// requires (§IV-A).
package services

import (
	"errors"
	"fmt"
	"sync"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// DHCPObserver is notified of lease changes; the DHCP binding sensor
// implements this.
type DHCPObserver func(ip netpkt.IPv4, mac netpkt.MAC, removed bool)

// ErrPoolExhausted reports an empty DHCP pool.
var ErrPoolExhausted = errors.New("services: DHCP pool exhausted")

// DHCPServer hands out IPv4 leases from a contiguous pool.
type DHCPServer struct {
	observer DHCPObserver

	mu    sync.Mutex
	base  uint32
	size  int
	next  int
	byMAC map[netpkt.MAC]netpkt.IPv4
	byIP  map[netpkt.IPv4]netpkt.MAC
	freed []netpkt.IPv4
}

// NewDHCPServer returns a server leasing size addresses starting at base.
// The observer may be nil.
func NewDHCPServer(base netpkt.IPv4, size int, observer DHCPObserver) *DHCPServer {
	return &DHCPServer{
		observer: observer,
		base:     base.Uint32(),
		size:     size,
		byMAC:    make(map[netpkt.MAC]netpkt.IPv4),
		byIP:     make(map[netpkt.IPv4]netpkt.MAC),
	}
}

// Lease assigns (or renews) an address for mac.
func (d *DHCPServer) Lease(mac netpkt.MAC) (netpkt.IPv4, error) {
	d.mu.Lock()
	if ip, ok := d.byMAC[mac]; ok {
		d.mu.Unlock()
		return ip, nil
	}
	var ip netpkt.IPv4
	switch {
	case len(d.freed) > 0:
		ip = d.freed[len(d.freed)-1]
		d.freed = d.freed[:len(d.freed)-1]
	case d.next < d.size:
		ip = netpkt.IPv4FromUint32(d.base + uint32(d.next))
		d.next++
	default:
		d.mu.Unlock()
		return netpkt.IPv4{}, fmt.Errorf("%w: size %d", ErrPoolExhausted, d.size)
	}
	d.byMAC[mac] = ip
	d.byIP[ip] = mac
	obs := d.observer
	d.mu.Unlock()

	if obs != nil {
		obs(ip, mac, false)
	}
	return ip, nil
}

// Release returns mac's lease to the pool.
func (d *DHCPServer) Release(mac netpkt.MAC) {
	d.mu.Lock()
	ip, ok := d.byMAC[mac]
	if ok {
		delete(d.byMAC, mac)
		delete(d.byIP, ip)
		d.freed = append(d.freed, ip)
	}
	obs := d.observer
	d.mu.Unlock()

	if ok && obs != nil {
		obs(ip, mac, true)
	}
}

// LeaseOf returns the current lease for mac.
func (d *DHCPServer) LeaseOf(mac netpkt.MAC) (netpkt.IPv4, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ip, ok := d.byMAC[mac]
	return ip, ok
}

// OwnerOf returns the MAC holding ip.
func (d *DHCPServer) OwnerOf(ip netpkt.IPv4) (netpkt.MAC, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	mac, ok := d.byIP[ip]
	return mac, ok
}

// ActiveLeases returns the number of outstanding leases.
func (d *DHCPServer) ActiveLeases() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.byMAC)
}
