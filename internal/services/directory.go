package services

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Directory is the Active Directory stand-in: it holds user accounts, host
// accounts, group (enclave) membership, Local Administrator grants, and —
// because this is what NotPetya-class credential theft exploits — the set
// of credentials cached on each endpoint by past log-ons. Like real AD, it
// does NOT track who is currently logged on; that is derived by the SIEM
// sensor from process events (paper §IV-A).
type Directory struct {
	mu     sync.Mutex
	users  map[string]*userRecord
	hosts  map[string]*hostRecord
	groups map[string]map[string]struct{} // group -> members (users)
}

type userRecord struct {
	name   string
	groups map[string]struct{}
}

type hostRecord struct {
	name        string
	enclave     string
	primaryUser string
	localAdmins map[string]struct{}
	cachedCreds map[string]struct{}
}

// Errors callers can match.
var (
	ErrUnknownUser = errors.New("services: unknown user")
	ErrUnknownHost = errors.New("services: unknown host")
)

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		users:  make(map[string]*userRecord),
		hosts:  make(map[string]*hostRecord),
		groups: make(map[string]map[string]struct{}),
	}
}

// AddUser creates a user account in the given groups.
func (d *Directory) AddUser(name string, groups ...string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	u := d.users[name]
	if u == nil {
		u = &userRecord{name: name, groups: make(map[string]struct{})}
		d.users[name] = u
	}
	for _, g := range groups {
		u.groups[g] = struct{}{}
		if d.groups[g] == nil {
			d.groups[g] = make(map[string]struct{})
		}
		d.groups[g][name] = struct{}{}
	}
}

// AddHost creates (or replaces) a host account joined to the domain.
func (d *Directory) AddHost(name, enclave, primaryUser string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hosts[name] = &hostRecord{
		name:        name,
		enclave:     enclave,
		primaryUser: primaryUser,
		localAdmins: make(map[string]struct{}),
		cachedCreds: make(map[string]struct{}),
	}
}

// GrantLocalAdmin gives user Local Administrator privileges on host.
func (d *Directory) GrantLocalAdmin(host, user string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.hosts[host]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	h.localAdmins[user] = struct{}{}
	return nil
}

// IsLocalAdmin reports whether user has Local Administrator on host.
func (d *Directory) IsLocalAdmin(host, user string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.hosts[host]
	if !ok {
		return false
	}
	_, ok = h.localAdmins[user]
	return ok
}

// CacheCredential records that user's credentials are now cached on host
// (the OS caches them at interactive log-on and never evicts them, which is
// what credential-theft malware dumps).
func (d *Directory) CacheCredential(host, user string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.hosts[host]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	h.cachedCreds[user] = struct{}{}
	return nil
}

// CachedCredentials returns the users whose credentials are cached on host.
func (d *Directory) CachedCredentials(host string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.hosts[host]
	if !ok {
		return nil
	}
	users := make([]string, 0, len(h.cachedCreds))
	for u := range h.cachedCreds {
		users = append(users, u)
	}
	sort.Strings(users)
	return users
}

// EnclaveOf returns the enclave (department/group) a host belongs to.
func (d *Directory) EnclaveOf(host string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.hosts[host]
	if !ok {
		return "", false
	}
	return h.enclave, true
}

// PrimaryUserOf returns the host's primary user ("" for servers).
func (d *Directory) PrimaryUserOf(host string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.hosts[host]
	if !ok {
		return "", false
	}
	return h.primaryUser, true
}

// HostsInEnclave returns all hosts in the enclave, sorted.
func (d *Directory) HostsInEnclave(enclave string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var hosts []string
	for name, h := range d.hosts {
		if h.enclave == enclave {
			hosts = append(hosts, name)
		}
	}
	sort.Strings(hosts)
	return hosts
}

// Hosts returns all host names, sorted.
func (d *Directory) Hosts() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	hosts := make([]string, 0, len(d.hosts))
	for name := range d.hosts {
		hosts = append(hosts, name)
	}
	sort.Strings(hosts)
	return hosts
}

// Users returns all user names, sorted.
func (d *Directory) Users() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	users := make([]string, 0, len(d.users))
	for name := range d.users {
		users = append(users, name)
	}
	sort.Strings(users)
	return users
}

// GroupMembers returns the users in a group, sorted.
func (d *Directory) GroupMembers(group string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	members := make([]string, 0, len(d.groups[group]))
	for u := range d.groups[group] {
		members = append(members, u)
	}
	sort.Strings(members)
	return members
}

// HasHost reports whether the host is joined to the domain.
func (d *Directory) HasHost(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.hosts[name]
	return ok
}
