package services

import (
	"errors"
	"sync"
	"testing"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

var (
	mac1 = netpkt.MustParseMAC("02:00:00:00:00:01")
	mac2 = netpkt.MustParseMAC("02:00:00:00:00:02")
	mac3 = netpkt.MustParseMAC("02:00:00:00:00:03")
)

func TestDHCPLeaseAssignsSequential(t *testing.T) {
	d := NewDHCPServer(netpkt.MustParseIPv4("10.0.0.10"), 4, nil)
	ip1, err := d.Lease(mac1)
	if err != nil {
		t.Fatal(err)
	}
	if ip1 != netpkt.MustParseIPv4("10.0.0.10") {
		t.Fatalf("first lease = %v", ip1)
	}
	ip2, err := d.Lease(mac2)
	if err != nil {
		t.Fatal(err)
	}
	if ip2 == ip1 {
		t.Fatal("duplicate lease")
	}
	// Renewal returns the same address.
	again, err := d.Lease(mac1)
	if err != nil || again != ip1 {
		t.Fatalf("renewal = %v, %v", again, err)
	}
	if d.ActiveLeases() != 2 {
		t.Fatalf("active = %d", d.ActiveLeases())
	}
}

func TestDHCPReleaseRecycles(t *testing.T) {
	d := NewDHCPServer(netpkt.MustParseIPv4("10.0.0.10"), 1, nil)
	ip1, err := d.Lease(mac1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lease(mac2); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want pool exhausted", err)
	}
	d.Release(mac1)
	ip2, err := d.Lease(mac2)
	if err != nil {
		t.Fatal(err)
	}
	if ip2 != ip1 {
		t.Fatalf("recycled lease = %v, want %v", ip2, ip1)
	}
}

func TestDHCPObserverNotified(t *testing.T) {
	var mu sync.Mutex
	type event struct {
		ip      netpkt.IPv4
		mac     netpkt.MAC
		removed bool
	}
	var events []event
	d := NewDHCPServer(netpkt.MustParseIPv4("10.0.0.10"), 4,
		func(ip netpkt.IPv4, mac netpkt.MAC, removed bool) {
			mu.Lock()
			defer mu.Unlock()
			events = append(events, event{ip: ip, mac: mac, removed: removed})
		})
	ip, err := d.Lease(mac1)
	if err != nil {
		t.Fatal(err)
	}
	d.Release(mac1)
	snapshot := func() []event {
		mu.Lock()
		defer mu.Unlock()
		return append([]event(nil), events...)
	}
	got := snapshot()
	if len(got) != 2 {
		t.Fatalf("events = %d", len(got))
	}
	if got[0].removed || got[0].ip != ip || got[0].mac != mac1 {
		t.Fatalf("lease event = %+v", got[0])
	}
	if !got[1].removed {
		t.Fatalf("release event = %+v", got[1])
	}
	// A renewal must not re-notify.
	if _, err := d.Lease(mac2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lease(mac2); err != nil {
		t.Fatal(err)
	}
	if got := snapshot(); len(got) != 3 {
		t.Fatalf("renewal re-notified: %d events", len(got))
	}
	_ = mac3
}

func TestDHCPOwnerLookup(t *testing.T) {
	d := NewDHCPServer(netpkt.MustParseIPv4("10.0.0.10"), 4, nil)
	ip, err := d.Lease(mac1)
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := d.OwnerOf(ip)
	if !ok || owner != mac1 {
		t.Fatalf("owner = %v, %v", owner, ok)
	}
	got, ok := d.LeaseOf(mac1)
	if !ok || got != ip {
		t.Fatalf("lease = %v, %v", got, ok)
	}
}

func TestDNSRegisterLookup(t *testing.T) {
	ip1 := netpkt.MustParseIPv4("10.0.0.1")
	ip2 := netpkt.MustParseIPv4("10.0.0.2")
	d := NewDNSServer(nil)
	d.Register("h1", ip1)
	d.Register("h1", ip2)
	if got := d.LookupA("h1"); len(got) != 2 {
		t.Fatalf("A records = %v", got)
	}
	if host, ok := d.LookupPTR(ip1); !ok || host != "h1" {
		t.Fatalf("PTR = %q, %v", host, ok)
	}
	if d.Records() != 2 {
		t.Fatalf("records = %d", d.Records())
	}
}

func TestDNSDynamicUpdateMovesRecord(t *testing.T) {
	ip := netpkt.MustParseIPv4("10.0.0.1")
	var mu sync.Mutex
	var events []string
	d := NewDNSServer(func(host string, _ netpkt.IPv4, removed bool) {
		mu.Lock()
		defer mu.Unlock()
		suffix := "+"
		if removed {
			suffix = "-"
		}
		events = append(events, host+suffix)
	})
	d.Register("h1", ip)
	d.Register("h2", ip) // dynamic DNS: the address moves
	if host, _ := d.LookupPTR(ip); host != "h2" {
		t.Fatalf("PTR = %q", host)
	}
	if got := d.LookupA("h1"); len(got) != 0 {
		t.Fatalf("stale A record: %v", got)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"h1+", "h1-", "h2+"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestDNSUnregister(t *testing.T) {
	ip := netpkt.MustParseIPv4("10.0.0.1")
	d := NewDNSServer(nil)
	d.Register("h1", ip)
	d.Unregister("h1", ip)
	if _, ok := d.LookupPTR(ip); ok {
		t.Fatal("PTR survived unregister")
	}
	d.Unregister("h1", ip) // idempotent
}

func TestDirectoryAccountsAndGrants(t *testing.T) {
	dir := NewDirectory()
	dir.AddUser("alice", "eng")
	dir.AddUser("bob", "eng")
	dir.AddHost("h1", "eng", "alice")
	dir.AddHost("h2", "eng", "bob")

	if err := dir.GrantLocalAdmin("h1", "bob"); err != nil {
		t.Fatal(err)
	}
	if !dir.IsLocalAdmin("h1", "bob") {
		t.Fatal("grant lost")
	}
	if dir.IsLocalAdmin("h2", "alice") {
		t.Fatal("ungranted admin")
	}
	if err := dir.GrantLocalAdmin("ghost", "bob"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v", err)
	}

	if enclave, ok := dir.EnclaveOf("h1"); !ok || enclave != "eng" {
		t.Fatalf("enclave = %q, %v", enclave, ok)
	}
	if u, ok := dir.PrimaryUserOf("h1"); !ok || u != "alice" {
		t.Fatalf("primary = %q, %v", u, ok)
	}
	if hosts := dir.HostsInEnclave("eng"); len(hosts) != 2 {
		t.Fatalf("enclave hosts = %v", hosts)
	}
	if members := dir.GroupMembers("eng"); len(members) != 2 {
		t.Fatalf("group members = %v", members)
	}
	if !dir.HasHost("h1") || dir.HasHost("ghost") {
		t.Fatal("HasHost wrong")
	}
}

func TestDirectoryCredentialCache(t *testing.T) {
	dir := NewDirectory()
	dir.AddHost("h1", "eng", "alice")
	if err := dir.CacheCredential("h1", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := dir.CacheCredential("h1", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := dir.CacheCredential("h1", "alice"); err != nil { // dedup
		t.Fatal(err)
	}
	creds := dir.CachedCredentials("h1")
	if len(creds) != 2 || creds[0] != "alice" || creds[1] != "bob" {
		t.Fatalf("creds = %v", creds)
	}
	if err := dir.CacheCredential("ghost", "x"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v", err)
	}
	if got := dir.CachedCredentials("ghost"); got != nil {
		t.Fatalf("creds on unknown host = %v", got)
	}
}
