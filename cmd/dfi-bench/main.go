// Command dfi-bench regenerates the paper's evaluation tables and figures
// (Tables I–II, Figures 4, 5a, 5b) and prints them in the paper's format.
//
// Usage:
//
//	dfi-bench -experiment all            # everything (several minutes)
//	dfi-bench -experiment table1         # one experiment
//	dfi-bench -experiment fig4 -quick    # reduced sweep for a fast look
//	dfi-bench -experiment table1 -native # this implementation's raw speed
//
// Campus-scale scenario telemetry (BENCH_scenarios.json trajectories):
//
//	dfi-bench -scenario all -quick -json                 # every hostile workload, CI scale
//	dfi-bench -scenario revocation-storm -json           # one scenario, full scale
//	dfi-bench -scenario all -quick -json -baseline BENCH_scenarios.json
//	                                                     # fail on SLO regression
//
// Connection-scale relay comparison (BENCH_relay.json):
//
//	dfi-bench -relay -json                # goroutine vs event-loop at 100/1k/10k conns
//	dfi-bench -relay -conns 200 -quick    # one point per mode, CI scale
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/dfi-sdn/dfi/internal/experiments"
	"github.com/dfi-sdn/dfi/internal/scenario"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1|table2|fig4|fig5a|fig5b|incident|all")
		seed       = flag.Int64("seed", 3, "seed for populations, scripts and fuzzing")
		native     = flag.Bool("native", false, "disable the paper-calibrated latency profile and measure this implementation's raw speed")
		quick      = flag.Bool("quick", false, "reduced sample counts and sweeps")
		outDir     = flag.String("o", "", "also write machine-readable .tsv files to this directory")
		scenName   = flag.String("scenario", "", "run a campus-scale scenario instead of a paper experiment: "+strings.Join(scenario.Names(), "|")+"|all")
		jsonOut    = flag.Bool("json", false, "with -scenario/-relay: emit the BENCH_*.json document (to -o dir or the working directory)")
		baseline   = flag.String("baseline", "", "with -scenario: committed BENCH_scenarios.json to gate against; any SLO that passed there must still pass")
		relay      = flag.Bool("relay", false, "run the connection-scale relay comparison (goroutine vs event-loop)")
		relayConns = flag.Int("conns", 0, "with -relay: a single connection count instead of the 100/1k/10k sweep")
		relayPoint = flag.String("relay-point", "", "internal: run one relay measurement (mode:conns) in this process and print JSON")
	)
	flag.Parse()
	if *relayPoint != "" {
		if err := runRelayPoint(*relayPoint, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "dfi-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *relay {
		if err := runRelay(*relayConns, *quick, *jsonOut, *outDir); err != nil {
			fmt.Fprintln(os.Stderr, "dfi-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *scenName != "" {
		if err := runScenarios(*scenName, *seed, *quick, *jsonOut, *outDir, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "dfi-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*experiment, *seed, !*native, *quick, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "dfi-bench:", err)
		os.Exit(1)
	}
}

func run(experiment string, seed int64, calibrated, quick bool, outDir string) error {
	want := func(name string) bool {
		return experiment == "all" || experiment == name
	}
	ran := false

	writeTSV := func(name, tsv string) error {
		if outDir == "" {
			return nil
		}
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(outDir, name+".tsv")
		if err := os.WriteFile(path, []byte(tsv), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}

	if want("table1") {
		ran = true
		cfg := experiments.MicrobenchConfig{Calibrated: calibrated, Seed: seed}
		if quick {
			cfg.Flows = 60
			cfg.Trials = 2
			cfg.TrialDuration = time.Second
		}
		res, err := experiments.RunTable1(cfg)
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		fmt.Println(res.Render())
		if err := writeTSV("table1", res.TSV()); err != nil {
			return err
		}
	}
	if want("table2") {
		ran = true
		cfg := experiments.MicrobenchConfig{Calibrated: calibrated, Seed: seed}
		if quick {
			cfg.Flows = 60
		}
		res, err := experiments.RunTable2(cfg)
		if err != nil {
			return fmt.Errorf("table2: %w", err)
		}
		fmt.Println(res.Render())
		if err := writeTSV("table2", res.TSV()); err != nil {
			return err
		}
	}
	if want("fig4") {
		ran = true
		cfg := experiments.Fig4Config{Calibrated: calibrated, Seed: seed}
		if quick {
			cfg.Rates = []int{0, 200, 400, 600, 800, 1000}
			cfg.Samples = 12
		}
		res, err := experiments.RunFig4(cfg)
		if err != nil {
			return fmt.Errorf("fig4: %w", err)
		}
		fmt.Println(res.Render())
		if err := writeTSV("fig4", res.TSV()); err != nil {
			return err
		}
	}
	if want("fig5a") {
		ran = true
		res, err := experiments.RunFig5a(experiments.Fig5aConfig{Seed: seed})
		if err != nil {
			return fmt.Errorf("fig5a: %w", err)
		}
		fmt.Println(res.Render())
		if err := writeTSV("fig5a", res.TSV()); err != nil {
			return err
		}
	}
	if want("incident") {
		ran = true
		res, err := experiments.RunIncidentResponse(experiments.IncidentConfig{Seed: seed})
		if err != nil {
			return fmt.Errorf("incident: %w", err)
		}
		fmt.Println(res.Render())
		if err := writeTSV("incident", res.TSV()); err != nil {
			return err
		}
	}
	if want("fig5b") {
		ran = true
		cfg := experiments.Fig5bConfig{Seed: seed}
		if quick {
			cfg.Hours = []int{0, 3, 6, 9, 12, 15, 18, 21}
		}
		res, err := experiments.RunFig5b(cfg)
		if err != nil {
			return fmt.Errorf("fig5b: %w", err)
		}
		fmt.Println(res.Render())
		if err := writeTSV("fig5b", res.TSV()); err != nil {
			return err
		}
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q (want %s)", experiment,
			strings.Join([]string{"table1", "table2", "fig4", "fig5a", "fig5b", "incident", "all"}, "|"))
	}
	return nil
}
