package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/dfi-sdn/dfi/internal/relaybench"
)

// RelaySchemaVersion identifies the BENCH_relay.json document layout.
const RelaySchemaVersion = "dfi.bench.relay/v1"

// relayDoc is the connection-scale relay comparison document.
type relayDoc struct {
	Schema string              `json:"schema"`
	GitRev string              `json:"git_rev"`
	Quick  bool                `json:"quick"`
	Points []*relaybench.Point `json:"points"`
}

// runRelayPoint is the child-process entry: one measurement in a fresh
// process (so RSS and goroutine counts are not polluted by earlier
// points), result as JSON on stdout.
func runRelayPoint(spec string, quick bool) error {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("relay point %q, want mode:conns", spec)
	}
	conns, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("relay point %q: %w", spec, err)
	}
	dur := 2 * time.Second
	if quick {
		dur = 500 * time.Millisecond
	}
	pt, err := relaybench.Run(relaybench.Config{
		Mode:     parts[0],
		Conns:    conns,
		Duration: dur,
		Churn:    true,
	})
	if err != nil {
		return err
	}
	return json.NewEncoder(os.Stdout).Encode(pt)
}

// runRelay is the parent driver: the goroutine-vs-evloop matrix, one
// re-exec per point, rendered as a table and optionally written to
// BENCH_relay.json.
func runRelay(conns int, quick, jsonOut bool, outDir string) error {
	scales := []int{100, 1000, 10000}
	if quick {
		scales = []int{50, 200}
	}
	if conns > 0 {
		scales = []int{conns}
	}
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("relay: resolve self for re-exec: %w", err)
	}
	// Containers without CAP_SYS_RESOURCE cap the per-process fd count;
	// clamp oversized scales to what one measurement process can hold and
	// label the point with the count that actually ran.
	maxConns := relaybench.MaxConns()
	clamped := scales[:0]
	for _, n := range scales {
		if n > maxConns {
			n = maxConns / 100 * 100
			fmt.Fprintf(os.Stderr, "relay: fd limit caps this host at %d conns; clamping oversized scale to %d\n",
				maxConns, n)
		}
		if len(clamped) == 0 || clamped[len(clamped)-1] != n {
			clamped = append(clamped, n)
		}
	}
	scales = clamped

	doc := relayDoc{Schema: RelaySchemaVersion, GitRev: gitRev(), Quick: quick}
	for _, n := range scales {
		for _, mode := range []string{relaybench.ModeGoroutine, relaybench.ModeEvloop} {
			args := []string{"-relay-point", mode + ":" + strconv.Itoa(n)}
			if quick {
				args = append(args, "-quick")
			}
			cmd := exec.Command(self, args...)
			cmd.Stderr = os.Stderr
			out, err := cmd.Output()
			if err != nil {
				return fmt.Errorf("relay point %s:%d: %w", mode, n, err)
			}
			var pt relaybench.Point
			if err := json.Unmarshal(out, &pt); err != nil {
				return fmt.Errorf("relay point %s:%d: %w", mode, n, err)
			}
			doc.Points = append(doc.Points, &pt)
			fmt.Printf("relay %-10s conns=%-6d p50=%8.0fµs p99=%8.0fµs rss=%6.1fMB goroutines=%-6d echoes=%d churn=%d\n",
				pt.Mode, pt.Conns, pt.P50Micros, pt.P99Micros,
				float64(pt.RSSBytes)/(1<<20), pt.Goroutines, pt.Echoes, pt.ChurnCycles)
		}
	}

	if err := gateRelay(doc.Points); err != nil {
		return err
	}
	if jsonOut {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		path := filepath.Join(outDir, "BENCH_relay.json")
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", path)
	}
	return nil
}

// gateRelay enforces the structural claims of the event-loop refactor on
// every (conns) pair that ran in both modes. Latency ratios vary too much
// across CI hosts to gate hard; goroutine count does not.
func gateRelay(points []*relaybench.Point) error {
	byScale := map[int]map[string]*relaybench.Point{}
	for _, pt := range points {
		if byScale[pt.Conns] == nil {
			byScale[pt.Conns] = map[string]*relaybench.Point{}
		}
		byScale[pt.Conns][pt.Mode] = pt
	}
	var violations []string
	for conns, modes := range byScale {
		ev, gr := modes[relaybench.ModeEvloop], modes[relaybench.ModeGoroutine]
		if ev == nil || gr == nil {
			continue
		}
		if ev.Fallback {
			// No poller on this platform: the pump fallback is still
			// 1 goroutine/conn, the O(workers) claim does not apply.
			continue
		}
		// The evloop proxy must hold conns sessions without per-connection
		// goroutines: everything left is harness + runtime, bounded well
		// below one goroutine per two connections at any measured scale.
		if limit := conns/2 + 64; ev.Goroutines > limit {
			violations = append(violations, fmt.Sprintf(
				"evloop at %d conns used %d goroutines (limit %d): per-connection goroutines crept back in",
				conns, ev.Goroutines, limit))
		}
		if gr.Goroutines < conns {
			violations = append(violations, fmt.Sprintf(
				"goroutine mode at %d conns reports only %d goroutines: harness no longer measures what it claims",
				conns, gr.Goroutines))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("relay structural gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}
