package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"github.com/dfi-sdn/dfi/internal/scenario"
)

// SchemaVersion identifies the BENCH_scenarios.json document layout.
// Consumers (the CI gate, trend dashboards) must reject unknown schemas
// rather than guess.
const SchemaVersion = "dfi.bench.scenarios/v1"

// benchDoc is the trajectory document one scenario run emits.
type benchDoc struct {
	Schema    string             `json:"schema"`
	GitRev    string             `json:"git_rev"`
	Seed      int64              `json:"seed"`
	Quick     bool               `json:"quick"`
	Scenarios []*scenario.Result `json:"scenarios"`
}

// gitRev best-efforts the current commit for provenance; trajectories from
// a non-git tree are stamped "unknown".
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// runScenarios runs the named scenario (or "all"), renders verdicts, writes
// BENCH_scenarios.json when asked, and enforces the baseline gate.
func runScenarios(name string, seed int64, quick, jsonOut bool, outDir, baselinePath string) error {
	results, err := scenario.RunByName(name, scenario.Config{Seed: seed, Quick: quick})
	if err != nil {
		return err
	}
	doc := benchDoc{
		Schema:    SchemaVersion,
		GitRev:    gitRev(),
		Seed:      seed,
		Quick:     quick,
		Scenarios: results,
	}

	if jsonOut {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		path := filepath.Join(outDir, "BENCH_scenarios.json")
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return err
		}
		os.Stdout.Write(blob)
		fmt.Fprintln(os.Stderr, "wrote", path)
	} else {
		renderScenarios(results)
	}

	failed := 0
	for _, res := range results {
		if !res.Passed() {
			failed++
		}
	}
	if baselinePath != "" {
		if err := compareBaseline(baselinePath, results); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d scenario(s) violated their SLOs", failed)
	}
	return nil
}

// renderScenarios prints the human-readable verdict table.
func renderScenarios(results []*scenario.Result) {
	for _, res := range results {
		status := "PASS"
		if !res.Passed() {
			status = "FAIL"
		}
		fmt.Printf("=== %-18s %s  (%.1fs, %d entities, %d switches)\n",
			res.Scenario, status, res.DurationSec, res.Entities, res.Switches)
		for _, m := range res.Metrics {
			switch {
			case m.Rate > 0:
				fmt.Printf("    %-24s %d events, %.1f/s\n", m.Name, m.Count, m.Rate)
			case m.P99 > 0:
				fmt.Printf("    %-24s n=%-7d p50=%-10s p95=%-10s p99=%-10s p99.9=%s\n",
					m.Name, m.Count, secs(m.P50), secs(m.P95), secs(m.P99), secs(m.P999))
			case m.Mean > 0:
				fmt.Printf("    %-24s n=%-7d mean=%s\n", m.Name, m.Count, secs(m.Mean))
			default:
				fmt.Printf("    %-24s %d %s\n", m.Name, m.Count, m.Unit)
			}
		}
		for _, v := range res.SLOs {
			mark := "ok"
			if !v.Pass {
				mark = "VIOLATED"
			}
			fmt.Printf("    slo %-20s actual=%-12g threshold=%-12g %s\n",
				v.Name, v.Actual, v.Threshold, mark)
		}
	}
}

// secs renders a quantile in engineering units.
func secs(v float64) string {
	switch {
	case v >= 1:
		return fmt.Sprintf("%.2fs", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.2fms", v*1e3)
	default:
		return fmt.Sprintf("%.0fµs", v*1e6)
	}
}

// compareBaseline enforces the SLO regression gate: every scenario SLO that
// passed in the committed baseline must still pass in this run. New
// scenarios and new gates are allowed; losing one is not.
func compareBaseline(path string, results []*scenario.Result) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchDoc
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Schema != SchemaVersion {
		return fmt.Errorf("baseline %s: schema %q, want %q", path, base.Schema, SchemaVersion)
	}
	current := make(map[string]*scenario.Result, len(results))
	for _, res := range results {
		current[res.Scenario] = res
	}
	var regressions []string
	for _, bres := range base.Scenarios {
		cres, ok := current[bres.Scenario]
		if !ok {
			// The run was scoped to a subset; only compare what ran.
			continue
		}
		for _, bslo := range bres.SLOs {
			if !bslo.Pass {
				continue
			}
			found := false
			for _, cslo := range cres.SLOs {
				if cslo.Name == bslo.Name {
					found = true
					if !cslo.Pass {
						regressions = append(regressions, fmt.Sprintf(
							"%s/%s: actual=%g threshold=%g (baseline passed at %g)",
							bres.Scenario, cslo.Name, cslo.Actual, cslo.Threshold, bslo.Actual))
					}
				}
			}
			if !found {
				regressions = append(regressions, fmt.Sprintf(
					"%s/%s: gate present in baseline but missing from this run",
					bres.Scenario, bslo.Name))
			}
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("SLO regression vs baseline %s:\n  %s",
			path, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintln(os.Stderr, "baseline gate: no SLO regressions vs", path)
	return nil
}
