// Command dfi-certgen provisions a private CA and mutually-authenticated
// certificates for a DFI control plane's TLS-secured OpenFlow channels
// (paper §IV).
//
// Usage:
//
//	dfi-certgen -out ./certs -hosts 127.0.0.1,dfid.example \
//	    -names dfid,controllerd,switch-1,switch-2
//
// writes ca.pem plus <name>.pem/<name>.key for each requested identity.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/dfi-sdn/dfi/internal/tlsutil"
)

func main() {
	var (
		outDir   = flag.String("out", "./certs", "output directory")
		names    = flag.String("names", "dfid,controllerd,switch-1", "comma-separated identities to issue")
		hosts    = flag.String("hosts", "127.0.0.1,localhost", "comma-separated SANs (IPs and DNS names) for every certificate")
		lifetime = flag.Duration("lifetime", 365*24*time.Hour, "certificate lifetime")
	)
	flag.Parse()
	if err := run(*outDir, *names, *hosts, *lifetime); err != nil {
		fmt.Fprintln(os.Stderr, "dfi-certgen:", err)
		os.Exit(1)
	}
}

func run(outDir, names, hosts string, lifetime time.Duration) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var dnsNames []string
	var ips []net.IP
	for _, h := range strings.Split(hosts, ",") {
		h = strings.TrimSpace(h)
		if h == "" {
			continue
		}
		if ip := net.ParseIP(h); ip != nil {
			ips = append(ips, ip)
		} else {
			dnsNames = append(dnsNames, h)
		}
	}

	ca, err := tlsutil.NewCA("dfi-ca", lifetime)
	if err != nil {
		return err
	}
	caPath := filepath.Join(outDir, "ca.pem")
	if err := os.WriteFile(caPath, ca.CertPEM(), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", caPath)

	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		cert, err := ca.Issue(name, dnsNames, ips, lifetime)
		if err != nil {
			return fmt.Errorf("issue %s: %w", name, err)
		}
		certPath := filepath.Join(outDir, name+".pem")
		keyPath := filepath.Join(outDir, name+".key")
		if err := tlsutil.WriteFiles(cert, certPath, keyPath); err != nil {
			return err
		}
		fmt.Println("wrote", certPath, "and", keyPath)
	}
	fmt.Printf("\nexample:\n")
	fmt.Printf("  dfid -listen :6653 -tls-cert %s/dfid.pem -tls-key %s/dfid.key -tls-ca %s/ca.pem\n", outDir, outDir, outDir)
	fmt.Printf("  switchd -controller 127.0.0.1:6653 -tls-ca %s/ca.pem -tls-cert %s/switch-1.pem -tls-key %s/switch-1.key\n", outDir, outDir, outDir)
	return nil
}
