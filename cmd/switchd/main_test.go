package main

import "testing"

func TestLinkFlagParsing(t *testing.T) {
	var links linkFlags
	if err := links.Set("1,127.0.0.1:9001,127.0.0.1:9101"); err != nil {
		t.Fatal(err)
	}
	if err := links.Set("2,127.0.0.1:9002,127.0.0.1:9102"); err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("links = %d", len(links))
	}
	if links[0].port != 1 || links[0].local != "127.0.0.1:9001" || links[0].peer != "127.0.0.1:9101" {
		t.Fatalf("link[0] = %+v", links[0])
	}
	if links.String() == "" {
		t.Fatal("String() empty")
	}

	for _, bad := range []string{
		"",                         // empty
		"1,only-two",               // missing field
		"a,b,c",                    // non-numeric port
		"1,a,b,c",                  // too many fields
		"99999999999999999999,a,b", // overflow
	} {
		var l linkFlags
		if err := l.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadAddresses(t *testing.T) {
	if err := run(1, "not-an-address", 4, "", "", "", "", nil); err == nil {
		t.Fatal("bad controller address accepted")
	}
	links := linkFlags{{port: 1, local: "not-an-address", peer: "also-bad"}}
	if err := run(1, "127.0.0.1:1", 4, "", "", "", "", links); err == nil {
		t.Fatal("bad link address accepted")
	}
}
