// Command switchd runs the software OpenFlow switch with a UDP-tunneled
// data plane: each switch port binds a local UDP socket and forwards
// Ethernet frames to a configured peer (another switchd's port, or any
// process that speaks raw frames over UDP). This makes multi-process
// topologies possible without raw sockets or privileges.
//
// Usage:
//
//	switchd -dpid 1 -controller 127.0.0.1:6653 \
//	    -link 1,127.0.0.1:9001,127.0.0.1:9101 \
//	    -link 2,127.0.0.1:9002,127.0.0.1:9102
//
// Each -link is "port,localUDP,peerUDP": frames arriving on localUDP are
// injected into the pipeline on that port; frames the pipeline outputs on
// the port are sent to peerUDP.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"

	"github.com/dfi-sdn/dfi/internal/switchsim"
	"github.com/dfi-sdn/dfi/internal/tlsutil"
)

type linkFlag struct {
	port  uint32
	local string
	peer  string
}

type linkFlags []linkFlag

func (l *linkFlags) String() string { return fmt.Sprintf("%v", []linkFlag(*l)) }

func (l *linkFlags) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) != 3 {
		return fmt.Errorf("link %q: want port,localUDP,peerUDP", v)
	}
	port, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return fmt.Errorf("link %q: port: %w", v, err)
	}
	*l = append(*l, linkFlag{port: uint32(port), local: parts[1], peer: parts[2]})
	return nil
}

func main() {
	var (
		dpid    = flag.Uint64("dpid", 1, "datapath id")
		ctlAddr = flag.String("controller", "127.0.0.1:6653", "controller (or dfid) address")
		tables  = flag.Int("tables", 4, "flow table count")
		tlsCA   = flag.String("tls-ca", "", "CA bundle; when set, the control channel uses TLS")
		tlsCert = flag.String("tls-cert", "", "client certificate for mutual TLS")
		tlsKey  = flag.String("tls-key", "", "client key for -tls-cert")
		tlsName = flag.String("tls-name", "", "expected TLS server name (defaults to the controller host)")
		links   linkFlags
	)
	flag.Var(&links, "link", "port,localUDP,peerUDP (repeatable)")
	flag.Parse()
	if err := run(*dpid, *ctlAddr, *tables, *tlsCA, *tlsCert, *tlsKey, *tlsName, links); err != nil {
		fmt.Fprintln(os.Stderr, "switchd:", err)
		os.Exit(1)
	}
}

func run(dpid uint64, ctlAddr string, tables int, tlsCA, tlsCert, tlsKey, tlsName string, links linkFlags) error {
	sw := switchsim.NewSwitch(switchsim.Config{DPID: dpid, NumTables: tables})

	const maxFrame = 2048
	for _, link := range links {
		peerAddr, err := net.ResolveUDPAddr("udp", link.peer)
		if err != nil {
			return fmt.Errorf("link port %d: resolve peer: %w", link.port, err)
		}
		localAddr, err := net.ResolveUDPAddr("udp", link.local)
		if err != nil {
			return fmt.Errorf("link port %d: resolve local: %w", link.port, err)
		}
		sock, err := net.ListenUDP("udp", localAddr)
		if err != nil {
			return fmt.Errorf("link port %d: bind: %w", link.port, err)
		}
		if err := sw.AttachPort(link.port, func(frame []byte) {
			if _, err := sock.WriteToUDP(frame, peerAddr); err != nil {
				log.Printf("port %d: send: %v", link.port, err)
			}
		}); err != nil {
			return fmt.Errorf("attach port %d: %w", link.port, err)
		}
		port := link.port
		go func() {
			buf := make([]byte, maxFrame)
			for {
				n, _, err := sock.ReadFromUDP(buf)
				if err != nil {
					log.Printf("port %d: recv: %v", port, err)
					return
				}
				frame := make([]byte, n)
				copy(frame, buf[:n])
				sw.Inject(port, frame)
			}
		}()
		log.Printf("port %d: %s <-> %s", link.port, link.local, link.peer)
	}

	var conn net.Conn
	var err error
	if tlsCA != "" {
		serverName := tlsName
		if serverName == "" {
			host, _, splitErr := net.SplitHostPort(ctlAddr)
			if splitErr != nil {
				return fmt.Errorf("controller address: %w", splitErr)
			}
			serverName = host
		}
		tlsCfg, cfgErr := tlsutil.LoadClientConfig(tlsCA, tlsCert, tlsKey, serverName)
		if cfgErr != nil {
			return cfgErr
		}
		conn, err = tls.Dial("tcp", ctlAddr, tlsCfg)
	} else {
		conn, err = net.Dial("tcp", ctlAddr)
	}
	if err != nil {
		return fmt.Errorf("dial controller: %w", err)
	}
	log.Printf("switch dpid=%#x connected to %s", dpid, ctlAddr)
	return sw.ServeControl(conn)
}
