// Command cbench floods a control plane (dfid or a bare controller) with
// packet-ins from an emulated switch and reports flow-setup latency or
// saturation throughput — the tool behind the paper's Table I.
//
// Usage:
//
//	cbench -connect 127.0.0.1:6653 -mode latency -flows 200
//	cbench -connect 127.0.0.1:6653 -mode throughput -duration 5s -rate 5000
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"github.com/dfi-sdn/dfi/internal/cbench"
)

func main() {
	var (
		connectAddr = flag.String("connect", "127.0.0.1:6653", "control plane address")
		mode        = flag.String("mode", "latency", "latency|throughput")
		flows       = flag.Int("flows", 200, "flow count (latency mode)")
		duration    = flag.Duration("duration", 5*time.Second, "trial length (throughput mode)")
		rate        = flag.Int("rate", 5000, "offered flows/sec (throughput mode)")
		seed        = flag.Int64("seed", 1, "header fuzzing seed")
	)
	flag.Parse()
	if err := run(*connectAddr, *mode, *flows, *duration, *rate, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "cbench:", err)
		os.Exit(1)
	}
}

func run(addr, mode string, flows int, duration time.Duration, rate int, seed int64) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	bench, err := cbench.New(conn, cbench.Config{Seed: seed})
	if err != nil {
		return err
	}
	if err := bench.WaitReady(10 * time.Second); err != nil {
		return err
	}

	switch mode {
	case "latency":
		stats, err := bench.Latency(flows)
		if err != nil {
			return err
		}
		fmt.Printf("latency over %d flows: %s (min %.2fms, max %.2fms)\n",
			stats.N(), stats,
			float64(stats.Min())/1e6, float64(stats.Max())/1e6)
	case "throughput":
		got, err := bench.Throughput(duration, rate)
		if err != nil {
			return err
		}
		fmt.Printf("throughput: %.0f flows/sec completed (offered %d flows/sec for %v)\n",
			got, rate, duration)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}
