// Command dfilint runs DFI's project-specific invariant analyzers over the
// module: hotpathalloc, snapshotmut, lockheld, metricname, errenvelope
// (see internal/dfilint). It is stdlib-only and exits non-zero when any
// diagnostic survives //dfi:ignore suppression.
//
// Usage:
//
//	go run ./cmd/dfilint ./...
//	go run ./cmd/dfilint -lockheld=false ./internal/bus/...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/dfi-sdn/dfi/internal/dfilint"
)

func main() {
	enabled := map[string]*bool{}
	for _, a := range dfilint.NewAnalyzers() {
		enabled[a.Name()] = flag.Bool(a.Name(), true, a.Doc())
	}
	list := flag.Bool("list", false, "list analyzers and exit")
	root := flag.String("root", "", "module root to analyze (default: nearest go.mod above the working directory)")
	flag.Parse()

	if *list {
		for _, a := range dfilint.NewAnalyzers() {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfilint:", err)
			os.Exit(2)
		}
	}

	pkgs, err := dfilint.Load(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfilint:", err)
		os.Exit(2)
	}
	pkgs = filterPackages(pkgs, flag.Args())

	on := make(map[string]bool, len(enabled))
	for name, v := range enabled {
		on[name] = *v
	}
	diags := dfilint.NewDriver(on).Run(pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// filterPackages narrows the loaded set to the given ./dir or ./dir/...
// patterns; no patterns (or ./...) selects everything. Analysis always
// loads the whole module first — intra-module type-checking needs it — so
// patterns only scope which packages' diagnostics are reported.
func filterPackages(pkgs []*dfilint.Package, patterns []string) []*dfilint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*dfilint.Package
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			if matchPattern(pkg.Dir, pat) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func matchPattern(dir, pat string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	if pat == "..." || pat == "" {
		return true
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		return dir == rest || strings.HasPrefix(dir, rest+"/")
	}
	return dir == pat
}
