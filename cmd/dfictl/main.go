// Command dfictl manages a running dfid through its admin API.
//
// Usage:
//
//	dfictl [-admin http://127.0.0.1:8181] rules
//	dfictl pdp register ops 50
//	dfictl allow -pdp ops -src-user alice -dst-host mail
//	dfictl deny  -pdp ops -src-host kiosk
//	dfictl revoke 7
//	dfictl bind user-host alice alice-laptop
//	dfictl stats
//	dfictl metrics
//	dfictl trace 20
//	dfictl spans            # recent spans
//	dfictl spans 42         # every span of trace 42
//	dfictl audit 50         # recent audit records
//	dfictl audit verify     # walk the on-disk hash chain
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/dfi-sdn/dfi/internal/admin"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/policytext"
)

func main() {
	adminBase := flag.String("admin", "http://127.0.0.1:8181", "dfid admin API base URL")
	flag.Parse()
	if err := run(admin.NewClient(*adminBase), flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dfictl:", err)
		os.Exit(1)
	}
}

func run(client *admin.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dfictl rules|allow|deny|revoke|pdp|bind|apply|switches|flows|stats|metrics|trace|spans|audit")
	}
	switch args[0] {
	case "rules":
		rules, err := client.Rules()
		if err != nil {
			return err
		}
		if len(rules) == 0 {
			fmt.Println("no rules (default deny)")
			return nil
		}
		for _, r := range rules {
			fmt.Printf("#%-5d p%-5d %-6s %-12s src=%s dst=%s\n",
				r.ID, r.Priority, r.Action, r.PDP, endpointString(r.Src), endpointString(r.Dst))
		}
		return nil

	case "allow", "deny":
		return insertRule(client, args[0], args[1:])

	case "revoke":
		if len(args) != 2 {
			return fmt.Errorf("usage: dfictl revoke <id>")
		}
		id, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad id %q: %w", args[1], err)
		}
		return client.RevokeRule(id)

	case "pdp":
		if len(args) != 4 || args[1] != "register" {
			return fmt.Errorf("usage: dfictl pdp register <name> <priority>")
		}
		prio, err := strconv.Atoi(args[3])
		if err != nil {
			return fmt.Errorf("bad priority %q: %w", args[3], err)
		}
		return client.RegisterPDP(args[2], prio)

	case "bind", "unbind":
		return bindCmd(client, args)

	case "apply":
		if len(args) != 2 {
			return fmt.Errorf("usage: dfictl apply <policy-file>")
		}
		return applyPolicyFile(client, args[1])

	case "switches":
		dpids, err := client.Switches()
		if err != nil {
			return err
		}
		if len(dpids) == 0 {
			fmt.Println("no switches attached")
			return nil
		}
		for _, d := range dpids {
			fmt.Printf("%#x\n", d)
		}
		return nil

	case "flows":
		if len(args) != 2 {
			return fmt.Errorf("usage: dfictl flows <dpid>")
		}
		dpid, err := strconv.ParseUint(args[1], 0, 64)
		if err != nil {
			return fmt.Errorf("bad dpid %q: %w", args[1], err)
		}
		flows, err := client.Flows(dpid)
		if err != nil {
			return err
		}
		if len(flows) == 0 {
			fmt.Println("no flows")
			return nil
		}
		for _, f := range flows {
			fmt.Printf("table=%d prio=%-5d cookie=%-6d %-6s pkts=%-8d %s\n",
				f.TableID, f.Priority, f.Cookie, f.Action, f.Packets, f.Match)
		}
		return nil

	case "stats":
		stats, err := client.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("rules:            %d\n", stats.Rules)
		fmt.Printf("proxy packet-ins: %d (denied %d, dropped %d, forwarded %d)\n",
			stats.ProxyPacketIns, stats.ProxyDenied, stats.ProxyDropped, stats.ProxyForwarded)
		fmt.Printf("pcp processed:    %d (allowed %d, denied %d, queue drops %d)\n",
			stats.PCPProcessed, stats.PCPAllowed, stats.PCPDenied, stats.PCPDropped)
		fmt.Printf("decision cache:   %d hits, %d misses (%d stale)\n",
			stats.PCPCacheHits, stats.PCPCacheMisses, stats.PCPCacheStale)
		fmt.Printf("latency:          %.2fms total (binding %.2fms, policy %.2fms)\n",
			stats.MeanLatencyMs, stats.BindingQueryMs, stats.PolicyQueryMs)
		return nil

	case "metrics":
		text, err := client.Metrics()
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil

	case "trace":
		n := 20
		if len(args) > 2 {
			return fmt.Errorf("usage: dfictl trace [n]")
		}
		if len(args) == 2 {
			var err error
			if n, err = strconv.Atoi(args[1]); err != nil || n < 1 {
				return fmt.Errorf("bad trace count %q", args[1])
			}
		}
		traces, err := client.Traces(n)
		if err != nil {
			return err
		}
		if len(traces) == 0 {
			fmt.Println("no traces recorded")
			return nil
		}
		for _, t := range traces {
			line := fmt.Sprintf("#%-6d sw=%#x in=%-3d %-13s total=%7.1fus (parse %.1f, binding %.1f, policy %.1f, install %.1f, proxy %.1f)",
				t.Seq, t.DPID, t.InPort, t.Outcome, t.TotalUs,
				t.ParseUs, t.BindingUs, t.PolicyUs, t.InstallUs, t.ProxyUs)
			if t.CacheHit {
				line += " [cache-hit]"
			}
			if t.Err != "" {
				line += " err=" + t.Err
			}
			fmt.Println(line + "  " + t.Flow)
		}
		return nil

	case "spans":
		if len(args) > 2 {
			return fmt.Errorf("usage: dfictl spans [trace-id]")
		}
		var (
			spans []admin.SpanJSON
			err   error
		)
		if len(args) == 2 {
			trace, perr := strconv.ParseUint(args[1], 10, 64)
			if perr != nil || trace == 0 {
				return fmt.Errorf("bad trace id %q", args[1])
			}
			spans, err = client.Spans(trace)
		} else {
			spans, err = client.RecentSpans(40)
		}
		if err != nil {
			return err
		}
		if len(spans) == 0 {
			fmt.Println("no spans recorded")
			return nil
		}
		for _, sp := range spans {
			line := fmt.Sprintf("trace=%-6d #%-6d parent=%-6d %-7s %-15s %9.1fus",
				sp.Trace, sp.ID, sp.Parent, sp.Component, sp.Stage, sp.DurationUs)
			if sp.DPID != 0 {
				line += fmt.Sprintf(" sw=%#x", sp.DPID)
			}
			if sp.RuleID != 0 {
				line += fmt.Sprintf(" rule=%d", sp.RuleID)
			}
			if sp.Detail != "" {
				line += "  " + sp.Detail
			}
			if sp.Err != "" {
				line += "  err=" + sp.Err
			}
			fmt.Println(line)
		}
		return nil

	case "audit":
		if len(args) == 2 && args[1] == "verify" {
			v, err := client.AuditVerify()
			if err != nil {
				return err
			}
			if !v.OK {
				return fmt.Errorf("audit chain FAILED after %d records: %s", v.Records, v.Error)
			}
			fmt.Printf("audit chain OK: %d records across %d file(s), head %.12s…\n",
				v.Records, len(v.Files), v.Head)
			return nil
		}
		n := 20
		if len(args) > 2 {
			return fmt.Errorf("usage: dfictl audit [n|verify]")
		}
		if len(args) == 2 {
			var err error
			if n, err = strconv.Atoi(args[1]); err != nil || n < 1 {
				return fmt.Errorf("bad audit count %q", args[1])
			}
		}
		recs, err := client.Audit(n)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			fmt.Println("no audit records")
			return nil
		}
		for _, r := range recs {
			line := fmt.Sprintf("#%-6d %s %-8s %-10s", r.Seq, r.Time, r.Kind, r.Op)
			if r.RuleID != 0 {
				line += fmt.Sprintf(" rule=%d", r.RuleID)
			}
			if r.PDP != "" {
				line += " pdp=" + r.PDP
			}
			if r.Flow != "" {
				line += "  " + r.Flow
			}
			if r.CacheHit {
				line += " [cache-hit]"
			}
			if r.Detail != "" {
				line += "  " + r.Detail
			}
			fmt.Println(line)
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// applyPolicyFile parses a policy file (see internal/policytext) and pushes
// its PDPs and rules through the admin API.
func applyPolicyFile(client *admin.Client, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	doc, err := policytext.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	for _, decl := range doc.PDPs {
		if err := client.RegisterPDP(decl.Name, decl.Priority); err != nil {
			return fmt.Errorf("pdp %s: %w", decl.Name, err)
		}
	}
	inserted := 0
	for _, r := range doc.Rules {
		j := admin.RuleJSON{PDP: r.PDP, Action: "deny"}
		if r.Action == policy.ActionAllow {
			j.Action = "allow"
		}
		j.Props = admin.PropsJSON{EtherType: r.Props.EtherType, IPProto: r.Props.IPProto}
		j.Src = endpointToJSON(r.Src)
		j.Dst = endpointToJSON(r.Dst)
		if _, err := client.InsertRule(j); err != nil {
			return fmt.Errorf("rule %s: %w", policytext.FormatRule(r), err)
		}
		inserted++
	}
	fmt.Printf("applied %d PDPs and %d rules from %s\n", len(doc.PDPs), inserted, path)
	return nil
}

func endpointToJSON(e policy.EndpointSpec) admin.EndpointJSON {
	j := admin.EndpointJSON{
		User:       e.User,
		Host:       e.Host,
		Port:       e.Port,
		SwitchPort: e.SwitchPort,
		DPID:       e.DPID,
	}
	if e.IP != nil {
		j.IP = e.IP.String()
	}
	if e.MAC != nil {
		j.MAC = e.MAC.String()
	}
	return j
}

func insertRule(client *admin.Client, action string, args []string) error {
	fs := flag.NewFlagSet(action, flag.ContinueOnError)
	var (
		pdpName = fs.String("pdp", "", "emitting PDP name (must be registered)")
		srcUser = fs.String("src-user", "", "source username")
		srcHost = fs.String("src-host", "", "source hostname")
		srcIP   = fs.String("src-ip", "", "source IP")
		dstUser = fs.String("dst-user", "", "destination username")
		dstHost = fs.String("dst-host", "", "destination hostname")
		dstIP   = fs.String("dst-ip", "", "destination IP")
		dstPort = fs.Uint("dst-port", 0, "destination TCP/UDP port (0 = any)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pdpName == "" {
		return fmt.Errorf("-pdp is required (register one with: dfictl pdp register <name> <priority>)")
	}
	rule := admin.RuleJSON{
		PDP:    *pdpName,
		Action: action,
		Src:    admin.EndpointJSON{User: *srcUser, Host: *srcHost, IP: *srcIP},
		Dst:    admin.EndpointJSON{User: *dstUser, Host: *dstHost, IP: *dstIP},
	}
	if *dstPort != 0 {
		p := uint16(*dstPort)
		rule.Dst.Port = &p
	}
	id, err := client.InsertRule(rule)
	if err != nil {
		return err
	}
	fmt.Printf("rule #%d inserted\n", id)
	return nil
}

func bindCmd(client *admin.Client, args []string) error {
	remove := args[0] == "unbind"
	if len(args) != 4 {
		return fmt.Errorf("usage: dfictl %s user-host|host-ip|ip-mac <a> <b>", args[0])
	}
	b := admin.BindingJSON{Kind: args[1], Remove: remove}
	switch args[1] {
	case "user-host":
		b.User, b.Host = args[2], args[3]
	case "host-ip":
		b.Host, b.IP = args[2], args[3]
	case "ip-mac":
		b.IP, b.MAC = args[2], args[3]
	default:
		return fmt.Errorf("unknown binding kind %q", args[1])
	}
	return client.AddBinding(b)
}

func endpointString(e admin.EndpointJSON) string {
	s := "("
	for _, f := range []string{e.User, e.Host, e.IP, e.MAC} {
		if f == "" {
			f = "*"
		}
		s += f + ","
	}
	if e.Port != nil {
		s += fmt.Sprintf("%d)", *e.Port)
	} else {
		s += "*)"
	}
	return s
}
