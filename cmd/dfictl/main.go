// Command dfictl manages a running dfid through its admin API.
//
// Usage:
//
//	dfictl [-admin http://127.0.0.1:8181] rules
//	dfictl policy show                  # running policy document
//	dfictl policy show -compiled        # lowered rules with provenance
//	dfictl policy validate corp.pol     # offline parse+compile check
//	dfictl policy diff corp.pol         # rule delta applying it would cause
//	dfictl policy apply -dry-run corp.pol
//	dfictl policy apply corp.pol        # atomic document replace
//	dfictl pdp register ops 50
//	dfictl allow -pdp ops -src-user alice -dst-host mail   # low-level escape hatch
//	dfictl deny  -pdp ops -src-host kiosk
//	dfictl revoke 7
//	dfictl bind user-host alice alice-laptop
//	dfictl stats
//	dfictl metrics
//	dfictl slo              # service-level-objective verdicts
//	dfictl trace 20
//	dfictl spans            # recent spans
//	dfictl spans 42         # every span of trace 42
//	dfictl audit 50         # recent audit records
//	dfictl audit verify     # walk the on-disk hash chain
//
// The allow/deny/revoke commands mutate single manager rules imperatively
// and bypass the policy document; prefer the dfictl policy workflow.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/dfi-sdn/dfi/internal/admin"
	"github.com/dfi-sdn/dfi/internal/policytext"
	"github.com/dfi-sdn/dfi/internal/policytext/compile"
	"github.com/dfi-sdn/dfi/internal/policytext/compile/verify"
)

func main() {
	adminBase := flag.String("admin", "http://127.0.0.1:8181", "dfid admin API base URL")
	flag.Parse()
	if err := run(admin.NewClient(*adminBase), flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dfictl:", err)
		os.Exit(1)
	}
}

func run(client *admin.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dfictl policy|rules|allow|deny|revoke|pdp|bind|switches|flows|stats|metrics|slo|trace|spans|audit")
	}
	switch args[0] {
	case "rules":
		rules, err := client.Rules()
		if err != nil {
			return err
		}
		if len(rules) == 0 {
			fmt.Println("no rules (default deny)")
			return nil
		}
		for _, r := range rules {
			fmt.Printf("#%-5d p%-5d %-6s %-12s src=%s dst=%s\n",
				r.ID, r.Priority, r.Action, r.PDP, endpointString(r.Src), endpointString(r.Dst))
		}
		return nil

	case "allow", "deny":
		return insertRule(client, args[0], args[1:])

	case "revoke":
		if len(args) != 2 {
			return fmt.Errorf("usage: dfictl revoke <id>")
		}
		id, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad id %q: %w", args[1], err)
		}
		return client.RevokeRule(id)

	case "pdp":
		if len(args) != 4 || args[1] != "register" {
			return fmt.Errorf("usage: dfictl pdp register <name> <priority>")
		}
		prio, err := strconv.Atoi(args[3])
		if err != nil {
			return fmt.Errorf("bad priority %q: %w", args[3], err)
		}
		return client.RegisterPDP(args[2], prio)

	case "bind", "unbind":
		return bindCmd(client, args)

	case "policy":
		return policyCmd(client, args[1:])

	case "apply":
		return fmt.Errorf("the apply command was replaced by the document workflow: dfictl policy apply <policy-file>")

	case "switches":
		dpids, err := client.Switches()
		if err != nil {
			return err
		}
		if len(dpids) == 0 {
			fmt.Println("no switches attached")
			return nil
		}
		for _, d := range dpids {
			fmt.Printf("%#x\n", d)
		}
		return nil

	case "flows":
		if len(args) != 2 {
			return fmt.Errorf("usage: dfictl flows <dpid>")
		}
		dpid, err := strconv.ParseUint(args[1], 0, 64)
		if err != nil {
			return fmt.Errorf("bad dpid %q: %w", args[1], err)
		}
		flows, err := client.Flows(dpid)
		if err != nil {
			return err
		}
		if len(flows) == 0 {
			fmt.Println("no flows")
			return nil
		}
		for _, f := range flows {
			fmt.Printf("table=%d prio=%-5d cookie=%-6d %-6s pkts=%-8d %s\n",
				f.TableID, f.Priority, f.Cookie, f.Action, f.Packets, f.Match)
		}
		return nil

	case "stats":
		stats, err := client.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("rules:            %d\n", stats.Rules)
		fmt.Printf("proxy packet-ins: %d (denied %d, dropped %d, forwarded %d)\n",
			stats.ProxyPacketIns, stats.ProxyDenied, stats.ProxyDropped, stats.ProxyForwarded)
		fmt.Printf("pcp processed:    %d (allowed %d, denied %d, queue drops %d)\n",
			stats.PCPProcessed, stats.PCPAllowed, stats.PCPDenied, stats.PCPDropped)
		fmt.Printf("decision cache:   %d hits, %d misses (%d stale)\n",
			stats.PCPCacheHits, stats.PCPCacheMisses, stats.PCPCacheStale)
		fmt.Printf("latency:          %.2fms total (binding %.2fms, policy %.2fms)\n",
			stats.MeanLatencyMs, stats.BindingQueryMs, stats.PolicyQueryMs)
		return nil

	case "metrics":
		text, err := client.Metrics()
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil

	case "slo":
		if len(args) > 1 {
			return fmt.Errorf("usage: dfictl slo")
		}
		rep, err := client.SLO()
		if err != nil {
			return err
		}
		if len(rep.Statuses) == 0 {
			fmt.Println("no objectives configured")
			return nil
		}
		health := "HEALTHY"
		if !rep.Healthy {
			health = "VIOLATED"
		}
		fmt.Printf("slo %s (%d objective(s), evaluated %s)\n",
			health, len(rep.Statuses), rep.Evaluated.Format(time.RFC3339))
		for _, st := range rep.Statuses {
			verdict := "ok"
			if !st.OK {
				verdict = "VIOLATED"
			}
			line := fmt.Sprintf("%-16s %-8s %-10s value=%-12g max=%-12g burn=%.2f window=%s",
				st.Name, verdict, st.Kind, st.Value, st.Threshold, st.Burn, st.Window)
			if st.Kind == "quantile" {
				line += fmt.Sprintf(" q=%g", st.Quantile)
			}
			if st.Breaches > 0 {
				line += fmt.Sprintf(" breaches=%d", st.Breaches)
			}
			if st.Since != "" {
				line += " since=" + st.Since
			}
			fmt.Println(line + "  " + st.Metric)
		}
		if !rep.Healthy {
			return errors.New("slo: one or more objectives violated")
		}
		return nil

	case "trace":
		n := 20
		if len(args) > 2 {
			return fmt.Errorf("usage: dfictl trace [n]")
		}
		if len(args) == 2 {
			var err error
			if n, err = strconv.Atoi(args[1]); err != nil || n < 1 {
				return fmt.Errorf("bad trace count %q", args[1])
			}
		}
		traces, err := client.Traces(n)
		if err != nil {
			return err
		}
		if len(traces) == 0 {
			fmt.Println("no traces recorded")
			return nil
		}
		for _, t := range traces {
			line := fmt.Sprintf("#%-6d sw=%#x in=%-3d %-13s total=%7.1fus (parse %.1f, binding %.1f, policy %.1f, install %.1f, proxy %.1f)",
				t.Seq, t.DPID, t.InPort, t.Outcome, t.TotalUs,
				t.ParseUs, t.BindingUs, t.PolicyUs, t.InstallUs, t.ProxyUs)
			if t.CacheHit {
				line += " [cache-hit]"
			}
			if t.Err != "" {
				line += " err=" + t.Err
			}
			fmt.Println(line + "  " + t.Flow)
		}
		return nil

	case "spans":
		if len(args) > 2 {
			return fmt.Errorf("usage: dfictl spans [trace-id]")
		}
		var (
			spans []admin.SpanJSON
			err   error
		)
		if len(args) == 2 {
			trace, perr := strconv.ParseUint(args[1], 10, 64)
			if perr != nil || trace == 0 {
				return fmt.Errorf("bad trace id %q", args[1])
			}
			spans, err = client.Spans(trace)
		} else {
			spans, err = client.RecentSpans(40)
		}
		if err != nil {
			return err
		}
		if len(spans) == 0 {
			fmt.Println("no spans recorded")
			return nil
		}
		for _, sp := range spans {
			line := fmt.Sprintf("trace=%-6d #%-6d parent=%-6d %-7s %-15s %9.1fus",
				sp.Trace, sp.ID, sp.Parent, sp.Component, sp.Stage, sp.DurationUs)
			if sp.DPID != 0 {
				line += fmt.Sprintf(" sw=%#x", sp.DPID)
			}
			if sp.RuleID != 0 {
				line += fmt.Sprintf(" rule=%d", sp.RuleID)
			}
			if sp.Detail != "" {
				line += "  " + sp.Detail
			}
			if sp.Err != "" {
				line += "  err=" + sp.Err
			}
			fmt.Println(line)
		}
		return nil

	case "audit":
		if len(args) == 2 && args[1] == "verify" {
			v, err := client.AuditVerify()
			if err != nil {
				return err
			}
			if !v.OK {
				return fmt.Errorf("audit chain FAILED after %d records: %s", v.Records, v.Error)
			}
			fmt.Printf("audit chain OK: %d records across %d file(s), head %.12s…\n",
				v.Records, len(v.Files), v.Head)
			return nil
		}
		n := 20
		if len(args) > 2 {
			return fmt.Errorf("usage: dfictl audit [n|verify]")
		}
		if len(args) == 2 {
			var err error
			if n, err = strconv.Atoi(args[1]); err != nil || n < 1 {
				return fmt.Errorf("bad audit count %q", args[1])
			}
		}
		recs, err := client.Audit(n)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			fmt.Println("no audit records")
			return nil
		}
		for _, r := range recs {
			line := fmt.Sprintf("#%-6d %s %-8s %-10s", r.Seq, r.Time, r.Kind, r.Op)
			if r.RuleID != 0 {
				line += fmt.Sprintf(" rule=%d", r.RuleID)
			}
			if r.PDP != "" {
				line += " pdp=" + r.PDP
			}
			if r.Flow != "" {
				line += "  " + r.Flow
			}
			if r.CacheHit {
				line += " [cache-hit]"
			}
			if r.Detail != "" {
				line += "  " + r.Detail
			}
			fmt.Println(line)
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// policyCmd implements the declarative document workflow: show the
// running document, validate/diff a proposed file and apply it atomically.
func policyCmd(client *admin.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dfictl policy show|apply|diff|validate")
	}
	switch args[0] {
	case "show":
		if len(args) == 2 && args[1] == "-compiled" {
			compiled, err := client.CompiledPolicy()
			if err != nil {
				return err
			}
			if len(compiled) == 0 {
				fmt.Println("no compiled rules (empty policy document)")
				return nil
			}
			for _, cr := range compiled {
				fmt.Printf("#%-5d p%-5d %-6s %-12s src=%s dst=%s  <- %s\n",
					cr.ID, cr.Priority, cr.Action, cr.PDP,
					endpointString(cr.Src), endpointString(cr.Dst), cr.Origin)
			}
			return nil
		}
		if len(args) != 1 {
			return fmt.Errorf("usage: dfictl policy show [-compiled]")
		}
		src, err := client.Policy()
		if err != nil {
			return err
		}
		fmt.Print(src)
		return nil

	case "apply":
		fs := flag.NewFlagSet("policy apply", flag.ContinueOnError)
		dryRun := fs.Bool("dry-run", false, "validate and print the rule delta without applying")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: dfictl policy apply [-dry-run] <policy-file>")
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		delta, err := client.ApplyPolicy(string(src), *dryRun)
		if err != nil {
			return err
		}
		printDelta(delta)
		if *dryRun {
			fmt.Println("dry run: nothing applied")
		} else {
			fmt.Printf("applied %s: %d rule(s) inserted, %d revoked\n",
				fs.Arg(0), len(delta.Insert), len(delta.Revoke))
		}
		return nil

	case "diff":
		if len(args) != 2 {
			return fmt.Errorf("usage: dfictl policy diff <policy-file>")
		}
		src, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		delta, err := client.DiffPolicy(string(src))
		if err != nil {
			return err
		}
		printDelta(delta)
		return nil

	case "validate":
		fs := flag.NewFlagSet("policy validate", flag.ContinueOnError)
		lint := fs.Bool("lint", false, "also run the policy verifier; error-severity findings fail validation")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: dfictl policy validate [-lint] <policy-file>")
		}
		doc, err := validatePolicyFile(fs.Arg(0))
		if err != nil || !*lint {
			return err
		}
		return lintDoc(fs.Arg(0), doc)

	case "lint":
		if len(args) < 2 {
			return fmt.Errorf("usage: dfictl policy lint <policy-file>...")
		}
		var failed []string
		for _, path := range args[1:] {
			doc, err := validatePolicyFile(path)
			if err == nil {
				err = lintDoc(path, doc)
			}
			if err != nil {
				failed = append(failed, path)
			}
		}
		if len(failed) > 0 {
			return fmt.Errorf("lint failed: %s", strings.Join(failed, ", "))
		}
		return nil

	default:
		return fmt.Errorf("unknown policy subcommand %q (want show|apply|diff|validate|lint)", args[0])
	}
}

// lintDoc runs the policy verifier over an already-compiled document and
// prints dfilint-style diagnostics. Warnings print and pass; any
// error-severity finding fails.
func lintDoc(path string, doc *policytext.Document) error {
	nerr := 0
	for _, f := range verify.Document(doc) {
		fmt.Fprintf(os.Stderr, "%s:%d: [%s] %s: %s\n", path, f.Line, f.Check, f.Severity, f.Message)
		if f.Severity == verify.SevError {
			nerr++
		}
	}
	if nerr > 0 {
		return fmt.Errorf("%s: %d error-severity finding(s)", path, nerr)
	}
	return nil
}

// validatePolicyFile parses and compiles a policy file locally, printing
// every error (with its 1-based line number) rather than stopping at the
// first. On success it returns the parsed document for further analysis.
func validatePolicyFile(path string) (*policytext.Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	doc, err := policytext.Parse(f)
	f.Close()
	if err == nil {
		_, err = compile.Lower(doc, time.Now())
	}
	if err != nil {
		for _, pe := range policytext.AsErrorList(err) {
			fmt.Fprintf(os.Stderr, "%s:%d: %s\n", path, pe.Line, pe.Msg)
		}
		return nil, fmt.Errorf("%s: %d error(s)", path, len(policytext.AsErrorList(err)))
	}
	stmts := len(doc.Rules)
	fmt.Printf("%s: ok (%d pdp(s), %d group(s), %d role(s), %d template(s), %d rule statement(s))\n",
		path, len(doc.PDPs), len(doc.Groups), len(doc.Roles), len(doc.Templates), stmts)
	return doc, nil
}

func printDelta(d admin.PolicyDeltaJSON) {
	if len(d.Insert) == 0 && len(d.Revoke) == 0 {
		fmt.Println("no rule changes")
	}
	for _, r := range d.Revoke {
		fmt.Printf("- %s\n", deltaRuleString(r))
	}
	for _, r := range d.Insert {
		fmt.Printf("+ %s\n", deltaRuleString(r))
	}
	for _, f := range d.Findings {
		fmt.Printf("! line %d: [%s] %s: %s\n", f.Line, f.Check, f.Severity, f.Message)
	}
	for _, w := range d.Widening {
		fmt.Printf("~ line %d: allow-set widening: %s (%s)\n", w.Line, w.Rule, w.Message)
	}
}

func deltaRuleString(r admin.RuleJSON) string {
	s := fmt.Sprintf("%-6s %-12s src=%s dst=%s", r.Action, r.PDP, endpointString(r.Src), endpointString(r.Dst))
	if r.ID != 0 {
		s = fmt.Sprintf("#%-5d %s", r.ID, s)
	}
	if r.Origin != "" {
		s += "  <- " + r.Origin
	}
	return s
}

func insertRule(client *admin.Client, action string, args []string) error {
	fs := flag.NewFlagSet(action, flag.ContinueOnError)
	var (
		pdpName = fs.String("pdp", "", "emitting PDP name (must be registered)")
		srcUser = fs.String("src-user", "", "source username")
		srcHost = fs.String("src-host", "", "source hostname")
		srcIP   = fs.String("src-ip", "", "source IP")
		dstUser = fs.String("dst-user", "", "destination username")
		dstHost = fs.String("dst-host", "", "destination hostname")
		dstIP   = fs.String("dst-ip", "", "destination IP")
		dstPort = fs.Uint("dst-port", 0, "destination TCP/UDP port (0 = any)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pdpName == "" {
		return fmt.Errorf("-pdp is required (register one with: dfictl pdp register <name> <priority>)")
	}
	rule := admin.RuleJSON{
		PDP:    *pdpName,
		Action: action,
		Src:    admin.EndpointJSON{User: *srcUser, Host: *srcHost, IP: *srcIP},
		Dst:    admin.EndpointJSON{User: *dstUser, Host: *dstHost, IP: *dstIP},
	}
	if *dstPort != 0 {
		p := uint16(*dstPort)
		rule.Dst.Port = &p
	}
	id, err := client.InsertRule(rule)
	if err != nil {
		return err
	}
	fmt.Printf("rule #%d inserted\n", id)
	return nil
}

func bindCmd(client *admin.Client, args []string) error {
	remove := args[0] == "unbind"
	if len(args) != 4 {
		return fmt.Errorf("usage: dfictl %s user-host|host-ip|ip-mac <a> <b>", args[0])
	}
	b := admin.BindingJSON{Kind: args[1], Remove: remove}
	switch args[1] {
	case "user-host":
		b.User, b.Host = args[2], args[3]
	case "host-ip":
		b.Host, b.IP = args[2], args[3]
	case "ip-mac":
		b.IP, b.MAC = args[2], args[3]
	default:
		return fmt.Errorf("unknown binding kind %q", args[1])
	}
	return client.AddBinding(b)
}

func endpointString(e admin.EndpointJSON) string {
	s := "("
	for _, f := range []string{e.User, e.Host, e.IP, e.MAC} {
		if f == "" {
			f = "*"
		}
		s += f + ","
	}
	if e.Port != nil {
		s += fmt.Sprintf("%d)", *e.Port)
	} else {
		s += "*)"
	}
	return s
}
