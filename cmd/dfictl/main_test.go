package main

import (
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/admin"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
)

// newTestClient stands up a full System behind an admin server and returns
// a client pointed at it, exactly as dfictl -admin would build one.
func newTestClient(t *testing.T) (*dfi.System, *admin.Client) {
	t.Helper()
	sys, err := dfi.New(dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
		a, b := bufpipe.New()
		ctl := controller.New(controller.Config{})
		go func() { _ = ctl.Serve(b) }()
		return a, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	srv := httptest.NewServer(admin.Handler(sys))
	t.Cleanup(srv.Close)
	return sys, admin.NewClient(srv.URL)
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if errRun != nil {
		t.Fatalf("command failed: %v\noutput: %s", errRun, out)
	}
	return string(out)
}

func TestRoundTripOverV1(t *testing.T) {
	sys, client := newTestClient(t)

	if err := run(client, []string{"pdp", "register", "ops", "50"}); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() error {
		return run(client, []string{"allow", "-pdp", "ops", "-src-user", "alice", "-dst-host", "mail"})
	})
	if !strings.Contains(out, "rule #1 inserted") {
		t.Fatalf("allow output = %q", out)
	}
	out = capture(t, func() error { return run(client, []string{"rules"}) })
	if !strings.Contains(out, "alice") || !strings.Contains(out, "ops") {
		t.Fatalf("rules output = %q", out)
	}

	if err := run(client, []string{"bind", "user-host", "alice", "h1"}); err != nil {
		t.Fatal(err)
	}
	if users := sys.Entity().UsersOn("h1"); len(users) != 1 || users[0] != "alice" {
		t.Fatalf("binding did not land: %v", users)
	}
	if err := run(client, []string{"unbind", "user-host", "alice", "h1"}); err != nil {
		t.Fatal(err)
	}

	out = capture(t, func() error { return run(client, []string{"stats"}) })
	if !strings.Contains(out, "rules:            1") {
		t.Fatalf("stats output = %q", out)
	}

	if err := run(client, []string{"revoke", "1"}); err != nil {
		t.Fatal(err)
	}
	// Revoking again must surface the server's enveloped 404.
	err := run(client, []string{"revoke", "1"})
	if err == nil || !strings.Contains(err.Error(), "not_found") {
		t.Fatalf("double revoke error = %v", err)
	}
}

func TestMetricsAndTraceSubcommands(t *testing.T) {
	_, client := newTestClient(t)

	out := capture(t, func() error { return run(client, []string{"metrics"}) })
	if !strings.Contains(out, "# TYPE dfi_pcp_processed_total counter") {
		t.Fatalf("metrics output missing exposition:\n%s", out)
	}

	out = capture(t, func() error { return run(client, []string{"trace"}) })
	if !strings.Contains(out, "no traces recorded") {
		t.Fatalf("trace output = %q", out)
	}
	if err := run(client, []string{"trace", "banana"}); err == nil {
		t.Fatal("bad trace count accepted")
	}
}

// TestSLOSubcommand round-trips dfictl slo against live admin servers:
// one without the engine (enveloped 404) and one with the default
// objectives under real mutation traffic.
func TestSLOSubcommand(t *testing.T) {
	// A server assembled without WithSLO answers the enveloped not_found.
	_, bare := newTestClient(t)
	if err := run(bare, []string{"slo"}); err == nil || !strings.Contains(err.Error(), "not_found") {
		t.Fatalf("slo against bare server = %v, want not_found envelope", err)
	}

	sys, err := dfi.New(
		dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
			a, b := bufpipe.New()
			ctl := controller.New(controller.Config{})
			go func() { _ = ctl.Serve(b) }()
			return a, nil
		}),
		dfi.WithSLO(),
		dfi.WithSLOInterval(-1), // evaluate at read time only
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	srv := httptest.NewServer(admin.Handler(sys))
	t.Cleanup(srv.Close)
	client := admin.NewClient(srv.URL)

	// Drive a few mutations so the TTE histogram has observations.
	if err := run(client, []string{"pdp", "register", "ops", "50"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		capture(t, func() error {
			return run(client, []string{"allow", "-pdp", "ops", "-src-user", "alice", "-dst-host", "mail"})
		})
	}

	out := capture(t, func() error { return run(client, []string{"slo"}) })
	for _, want := range []string{"slo HEALTHY", "tte-p99", "admission-p99", "packetin-rate", "audit-failures"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slo output missing %q:\n%s", want, out)
		}
	}

	// The typed client decodes the same report.
	rep, err := client.SLO()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy || len(rep.Statuses) != 4 {
		t.Fatalf("client.SLO() = %+v", rep)
	}
}

const testPolicy = `group eng { user alice; user bob }

pdp corp priority 50
allow proto tcp from group eng to host mail port 143
deny from host lobby-kiosk
`

func writePolicyFile(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "corp.pol")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPolicyWorkflow(t *testing.T) {
	sys, client := newTestClient(t)
	path := writePolicyFile(t, testPolicy)

	// validate is fully offline.
	out := capture(t, func() error { return run(client, []string{"policy", "validate", path}) })
	if !strings.Contains(out, "ok (1 pdp(s), 1 group(s)") {
		t.Fatalf("validate output = %q", out)
	}

	// apply -dry-run prints the delta but changes nothing.
	out = capture(t, func() error { return run(client, []string{"policy", "apply", "-dry-run", path}) })
	if !strings.Contains(out, "dry run: nothing applied") || strings.Count(out, "+ ") != 3 {
		t.Fatalf("dry-run output = %q", out)
	}
	if sys.Policy().Len() != 0 {
		t.Fatal("dry run installed rules")
	}

	// Real apply.
	out = capture(t, func() error { return run(client, []string{"policy", "apply", path}) })
	if !strings.Contains(out, "3 rule(s) inserted, 0 revoked") {
		t.Fatalf("apply output = %q", out)
	}
	if sys.Policy().Len() != 3 {
		t.Fatalf("manager has %d rules", sys.Policy().Len())
	}

	// show prints the canonical document.
	out = capture(t, func() error { return run(client, []string{"policy", "show"}) })
	if !strings.Contains(out, "group eng") || !strings.Contains(out, "pdp corp priority 50") {
		t.Fatalf("show output = %q", out)
	}

	// show -compiled carries provenance.
	out = capture(t, func() error { return run(client, []string{"policy", "show", "-compiled"}) })
	if strings.Count(out, "<- line") != 3 || !strings.Contains(out, "group eng") {
		t.Fatalf("show -compiled output = %q", out)
	}

	// diff against a grown document previews one insert.
	grown := writePolicyFile(t, testPolicy+"deny to ip 10.0.0.66\n")
	out = capture(t, func() error { return run(client, []string{"policy", "diff", grown}) })
	if strings.Count(out, "\n") != 1 || !strings.HasPrefix(out, "+ ") ||
		!strings.Contains(out, "10.0.0.66") {
		t.Fatalf("diff output = %q", out)
	}
	// Re-diff of the unchanged document is a no-op.
	out = capture(t, func() error { return run(client, []string{"policy", "diff", path}) })
	if !strings.Contains(out, "no rule changes") {
		t.Fatalf("no-op diff output = %q", out)
	}
}

func TestPolicyValidateReportsEveryError(t *testing.T) {
	_, client := newTestClient(t)
	path := writePolicyFile(t, "pdp p priority banana\nallow from group ghosts\n")
	err := run(client, []string{"policy", "validate", path})
	if err == nil || !strings.Contains(err.Error(), "2 error(s)") {
		t.Fatalf("validate error = %v", err)
	}
}

func TestLegacyApplyPointsAtPolicyWorkflow(t *testing.T) {
	_, client := newTestClient(t)
	err := run(client, []string{"apply", "whatever.pol"})
	if err == nil || !strings.Contains(err.Error(), "dfictl policy apply") {
		t.Fatalf("legacy apply error = %v", err)
	}
}

const shadowedPolicy = "pdp admin priority 100\nallow from host web\npdp corp priority 10\ndeny from host web to host db\n"

// TestPolicyLint: lint is fully offline; error-severity findings exit
// non-zero, clean and warning-only documents pass.
func TestPolicyLint(t *testing.T) {
	_, client := newTestClient(t)

	clean := writePolicyFile(t, "pdp corp priority 50\nallow from host web to host db\n")
	if err := run(client, []string{"policy", "lint", clean}); err != nil {
		t.Fatalf("clean lint failed: %v", err)
	}

	warn := writePolicyFile(t, "pdp corp priority 10\ndeny to host db\nallow from host web to host db\n")
	if err := run(client, []string{"policy", "lint", warn}); err != nil {
		t.Fatalf("warning-only lint failed: %v", err)
	}

	bad := writePolicyFile(t, shadowedPolicy)
	err := run(client, []string{"policy", "lint", bad})
	if err == nil || !strings.Contains(err.Error(), "lint failed") {
		t.Fatalf("lint error = %v", err)
	}

	// Several files: one bad file fails the whole run, naming it.
	err = run(client, []string{"policy", "lint", clean, bad})
	if err == nil || !strings.Contains(err.Error(), bad) {
		t.Fatalf("multi-file lint error = %v", err)
	}
}

// TestPolicyValidateLintFlag: -lint layers verifier findings onto
// validation; without it the shadowed document still validates.
func TestPolicyValidateLintFlag(t *testing.T) {
	_, client := newTestClient(t)
	bad := writePolicyFile(t, shadowedPolicy)
	if err := run(client, []string{"policy", "validate", bad}); err != nil {
		t.Fatalf("plain validate rejected compilable document: %v", err)
	}
	err := run(client, []string{"policy", "validate", "-lint", bad})
	if err == nil || !strings.Contains(err.Error(), "error-severity") {
		t.Fatalf("validate -lint error = %v", err)
	}
}
