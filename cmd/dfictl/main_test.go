package main

import (
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/admin"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
)

// newTestClient stands up a full System behind an admin server and returns
// a client pointed at it, exactly as dfictl -admin would build one.
func newTestClient(t *testing.T) (*dfi.System, *admin.Client) {
	t.Helper()
	sys, err := dfi.New(dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
		a, b := bufpipe.New()
		ctl := controller.New(controller.Config{})
		go func() { _ = ctl.Serve(b) }()
		return a, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	srv := httptest.NewServer(admin.Handler(sys))
	t.Cleanup(srv.Close)
	return sys, admin.NewClient(srv.URL)
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if errRun != nil {
		t.Fatalf("command failed: %v\noutput: %s", errRun, out)
	}
	return string(out)
}

func TestRoundTripOverV1(t *testing.T) {
	sys, client := newTestClient(t)

	if err := run(client, []string{"pdp", "register", "ops", "50"}); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() error {
		return run(client, []string{"allow", "-pdp", "ops", "-src-user", "alice", "-dst-host", "mail"})
	})
	if !strings.Contains(out, "rule #1 inserted") {
		t.Fatalf("allow output = %q", out)
	}
	out = capture(t, func() error { return run(client, []string{"rules"}) })
	if !strings.Contains(out, "alice") || !strings.Contains(out, "ops") {
		t.Fatalf("rules output = %q", out)
	}

	if err := run(client, []string{"bind", "user-host", "alice", "h1"}); err != nil {
		t.Fatal(err)
	}
	if users := sys.Entity().UsersOn("h1"); len(users) != 1 || users[0] != "alice" {
		t.Fatalf("binding did not land: %v", users)
	}
	if err := run(client, []string{"unbind", "user-host", "alice", "h1"}); err != nil {
		t.Fatal(err)
	}

	out = capture(t, func() error { return run(client, []string{"stats"}) })
	if !strings.Contains(out, "rules:            1") {
		t.Fatalf("stats output = %q", out)
	}

	if err := run(client, []string{"revoke", "1"}); err != nil {
		t.Fatal(err)
	}
	// Revoking again must surface the server's enveloped 404.
	err := run(client, []string{"revoke", "1"})
	if err == nil || !strings.Contains(err.Error(), "not_found") {
		t.Fatalf("double revoke error = %v", err)
	}
}

func TestMetricsAndTraceSubcommands(t *testing.T) {
	_, client := newTestClient(t)

	out := capture(t, func() error { return run(client, []string{"metrics"}) })
	if !strings.Contains(out, "# TYPE dfi_pcp_processed_total counter") {
		t.Fatalf("metrics output missing exposition:\n%s", out)
	}

	out = capture(t, func() error { return run(client, []string{"trace"}) })
	if !strings.Contains(out, "no traces recorded") {
		t.Fatalf("trace output = %q", out)
	}
	if err := run(client, []string{"trace", "banana"}); err == nil {
		t.Fatal("bad trace count accepted")
	}
}
