// Command dfid runs the DFI control plane: it accepts OpenFlow switch
// connections, interposes DFI's access control in front of an SDN
// controller, and serves the administrative API.
//
// Usage:
//
//	dfid -listen :6653 -controller 127.0.0.1:6654 -admin 127.0.0.1:8181
//
// Point switches at dfid instead of the controller; dfid dials the real
// controller per switch. The initial policy is default-deny; use
// -bootstrap allow-all for a permissive start, and dfictl (or the admin
// API) to manage policy at runtime.
package main

import (
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/admin"
	"github.com/dfi-sdn/dfi/internal/bus"
	"github.com/dfi-sdn/dfi/internal/core/pdp"
	"github.com/dfi-sdn/dfi/internal/sensors"
	"github.com/dfi-sdn/dfi/internal/tlsutil"
)

func main() {
	var (
		listenAddr  = flag.String("listen", ":6653", "address to accept OpenFlow switch connections on")
		ctlAddr     = flag.String("controller", "127.0.0.1:6654", "SDN controller address to dial per switch")
		adminAddr   = flag.String("admin", "127.0.0.1:8181", "admin API address (empty to disable)")
		sensorAddr  = flag.String("sensor-listen", "", "address to accept remote sensor event streams (length-prefixed JSON; empty to disable)")
		bootstrap   = flag.String("bootstrap", "default-deny", "initial policy: default-deny|allow-all")
		policyFile  = flag.String("policy-file", "", "policy document to compile at startup (see internal/policytext)")
		policyWatch = flag.Duration("policy-watch", 0, "re-apply -policy-file when its mtime changes, polling at this interval (0 disables)")
		quarantine  = flag.String("quarantine-template", "", "policy template instantiated as <name>(host) on compromise events")
		queueDepth  = flag.Int("queue", 512, "PCP admission queue depth")
		workers     = flag.Int("workers", 8, "PCP worker count")
		evloop      = flag.Int("evloop-workers", 0, "relay switch connections on this many event-loop workers instead of two goroutines per switch (0 disables; -1 selects the default pool size)")

		auditLog      = flag.String("audit-log", "", "path of the hash-chained enforcement audit log (empty to disable)")
		auditMaxBytes = flag.Int64("audit-max-bytes", 0, "audit log rotation threshold in bytes (0 = 64 MiB default)")
		pprofOn       = flag.Bool("pprof", false, "expose /debug/pprof on the admin API")
		sloInterval   = flag.Duration("slo-interval", 0, "evaluate the default service-level objectives at this interval and serve GET /v1/slo (0 disables the engine; negative evaluates at read time only)")

		tlsCert = flag.String("tls-cert", "", "PEM certificate for accepting switches over TLS")
		tlsKey  = flag.String("tls-key", "", "PEM key for -tls-cert")
		tlsCA   = flag.String("tls-ca", "", "CA bundle; when set, switches must present client certificates")

		ctlCA      = flag.String("controller-ca", "", "CA bundle for dialing the controller over TLS")
		ctlCert    = flag.String("controller-cert", "", "client certificate for the controller connection")
		ctlKey     = flag.String("controller-key", "", "client key for -controller-cert")
		ctlTLSName = flag.String("controller-tls-name", "", "expected controller TLS server name (defaults to its host)")
	)
	flag.Parse()
	cfg := daemonConfig{
		listenAddr: *listenAddr, ctlAddr: *ctlAddr, adminAddr: *adminAddr,
		sensorAddr: *sensorAddr,
		bootstrap:  *bootstrap, policyFile: *policyFile,
		policyWatch: *policyWatch, quarantineTmpl: *quarantine,
		queueDepth: *queueDepth, workers: *workers, evloopWorkers: *evloop,
		auditLog: *auditLog, auditMaxBytes: *auditMaxBytes, pprof: *pprofOn,
		sloInterval: *sloInterval,
		tlsCert:     *tlsCert, tlsKey: *tlsKey, tlsCA: *tlsCA,
		ctlCA: *ctlCA, ctlCert: *ctlCert, ctlKey: *ctlKey, ctlTLSName: *ctlTLSName,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dfid:", err)
		os.Exit(1)
	}
}

type daemonConfig struct {
	listenAddr, ctlAddr, adminAddr string
	sensorAddr                     string
	bootstrap, policyFile          string
	policyWatch                    time.Duration
	quarantineTmpl                 string
	queueDepth, workers            int
	evloopWorkers                  int
	auditLog                       string
	auditMaxBytes                  int64
	pprof                          bool
	sloInterval                    time.Duration
	tlsCert, tlsKey, tlsCA         string
	ctlCA, ctlCert, ctlKey         string
	ctlTLSName                     string
}

// watchPolicyFile polls the policy file's mtime and re-applies the
// document when it changes. A file that fails to parse/compile is logged
// and skipped; the running policy stays on the last good document (the
// apply is atomic), and the watcher keeps polling.
func watchPolicyFile(sys *dfi.System, path string, interval time.Duration) {
	var lastMod time.Time
	if fi, err := os.Stat(path); err == nil {
		lastMod = fi.ModTime()
	}
	for {
		time.Sleep(interval)
		fi, err := os.Stat(path)
		if err != nil || !fi.ModTime().After(lastMod) {
			continue
		}
		lastMod = fi.ModTime()
		src, err := os.ReadFile(path)
		if err != nil {
			log.Printf("policy watch: read %s: %v", path, err)
			continue
		}
		delta, err := sys.PolicyEngine().SetSource(string(src))
		if err != nil {
			log.Printf("policy watch: %s rejected, keeping previous policy:\n%v", path, err)
			continue
		}
		log.Printf("policy watch: re-applied %s (+%d/-%d rules)", path, len(delta.Insert), len(delta.Revoke))
	}
}

func run(cfg daemonConfig) error {
	listenAddr, ctlAddr, adminAddr := cfg.listenAddr, cfg.ctlAddr, cfg.adminAddr
	bootstrap, policyFile := cfg.bootstrap, cfg.policyFile

	dialController := func() (io.ReadWriteCloser, error) {
		return net.Dial("tcp", ctlAddr)
	}
	if cfg.ctlCA != "" {
		serverName := cfg.ctlTLSName
		if serverName == "" {
			host, _, err := net.SplitHostPort(ctlAddr)
			if err != nil {
				return fmt.Errorf("controller address: %w", err)
			}
			serverName = host
		}
		tlsCfg, err := tlsutil.LoadClientConfig(cfg.ctlCA, cfg.ctlCert, cfg.ctlKey, serverName)
		if err != nil {
			return err
		}
		dialController = func() (io.ReadWriteCloser, error) {
			return tls.Dial("tcp", ctlAddr, tlsCfg)
		}
	}

	sysOpts := []dfi.Option{
		dfi.WithControllerDialer(dialController),
		dfi.WithAdmissionQueue(cfg.queueDepth, cfg.workers),
	}
	if cfg.evloopWorkers != 0 {
		sysOpts = append(sysOpts, dfi.WithEventLoop(cfg.evloopWorkers))
	}
	if cfg.auditLog != "" {
		sysOpts = append(sysOpts, dfi.WithAuditLog(cfg.auditLog, cfg.auditMaxBytes))
	}
	if cfg.sloInterval != 0 {
		sysOpts = append(sysOpts, dfi.WithSLO(), dfi.WithSLOInterval(cfg.sloInterval))
	}
	sys, err := dfi.New(sysOpts...)
	if err != nil {
		return err
	}
	defer sys.Close()
	if cfg.auditLog != "" {
		log.Printf("audit log at %s (head %.12s…)", cfg.auditLog, sys.Audit().Head())
	}

	switch bootstrap {
	case "default-deny":
		// Nothing to do: no matching rule means deny.
	case "allow-all":
		allowAll, err := pdp.NewAllowAll(sys.Policy())
		if err != nil {
			return err
		}
		if err := allowAll.Enable(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown bootstrap policy %q", bootstrap)
	}

	if policyFile != "" {
		src, err := os.ReadFile(policyFile)
		if err != nil {
			return fmt.Errorf("policy file: %w", err)
		}
		delta, err := sys.PolicyEngine().SetSource(string(src))
		if err != nil {
			return fmt.Errorf("policy file %s:\n%v", policyFile, err)
		}
		log.Printf("compiled %s: %d rule(s) installed", policyFile, len(delta.Insert))
		if cfg.policyWatch > 0 {
			go watchPolicyFile(sys, policyFile, cfg.policyWatch)
			log.Printf("watching %s for changes every %s", policyFile, cfg.policyWatch)
		}
	}

	if cfg.quarantineTmpl != "" {
		cancelQuarantine, _, err := sensors.AttachQuarantineTemplate(sys.EventBus(), sys.PolicyEngine(), cfg.quarantineTmpl)
		if err != nil {
			return err
		}
		defer cancelQuarantine()
		log.Printf("compromise events instantiate policy template %s(host)", cfg.quarantineTmpl)
	}

	if cfg.sensorAddr != "" {
		codec := bus.NewCodec()
		sensors.RegisterWireTypes(codec)
		sensorLis, err := net.Listen("tcp", cfg.sensorAddr)
		if err != nil {
			return fmt.Errorf("sensor listen: %w", err)
		}
		log.Printf("accepting remote sensor streams on %s", sensorLis.Addr())
		go func() {
			if err := bus.ServeSink(sensorLis, codec, sys.EventBus()); err != nil {
				log.Printf("sensor sink stopped: %v", err)
			}
		}()
	}

	if adminAddr != "" {
		adminLis, err := net.Listen("tcp", adminAddr)
		if err != nil {
			return fmt.Errorf("admin listen: %w", err)
		}
		log.Printf("admin API on http://%s", adminLis.Addr())
		var handlerOpts []admin.HandlerOption
		if cfg.pprof {
			handlerOpts = append(handlerOpts, admin.WithPprof())
			log.Printf("pprof exposed at http://%s/debug/pprof/", adminLis.Addr())
		}
		go func() {
			if err := http.Serve(adminLis, admin.Handler(sys, handlerOpts...)); err != nil {
				log.Printf("admin server stopped: %v", err)
			}
		}()
	}

	var lis net.Listener
	if cfg.tlsCert != "" {
		tlsCfg, err := tlsutil.LoadServerConfig(cfg.tlsCert, cfg.tlsKey, cfg.tlsCA)
		if err != nil {
			return err
		}
		lis, err = tls.Listen("tcp", listenAddr, tlsCfg)
		if err != nil {
			return fmt.Errorf("listen (tls): %w", err)
		}
		log.Printf("TLS enabled for switch connections (mutual auth: %v)", cfg.tlsCA != "")
	} else {
		lis, err = net.Listen("tcp", listenAddr)
		if err != nil {
			return fmt.Errorf("listen: %w", err)
		}
	}
	log.Printf("accepting switches on %s, fronting controller %s (policy bootstrap: %s)",
		lis.Addr(), ctlAddr, bootstrap)

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM; per-switch
	// sessions terminate when their connections close.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("received %v; shutting down", sig)
		lis.Close()
	}()

	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("accept: %w", err)
		}
		remote := conn.RemoteAddr()
		log.Printf("switch connected from %s", remote)
		// Non-blocking registration: in event-loop mode no goroutine is
		// held per switch; in goroutine mode HandleSwitch spawns the relay.
		if err := sys.HandleSwitch(conn, func(err error) {
			if err != nil {
				log.Printf("switch %s: %v", remote, err)
			} else {
				log.Printf("switch %s disconnected", remote)
			}
		}); err != nil {
			log.Printf("switch %s: %v", remote, err)
		}
	}
}
