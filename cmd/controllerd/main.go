// Command controllerd runs the reactive learning-switch SDN controller.
// It is deliberately DFI-unaware: point it at switches directly, or let
// dfid interpose in front of it — its behaviour is identical either way
// (controller obliviousness).
//
// Usage:
//
//	controllerd -listen :6654
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/tlsutil"
)

func main() {
	var (
		listenAddr = flag.String("listen", ":6654", "address to accept OpenFlow connections on")
		idle       = flag.Int("idle-timeout", 60, "idle timeout (seconds) on installed forwarding rules")
		tlsCert    = flag.String("tls-cert", "", "PEM certificate for accepting connections over TLS")
		tlsKey     = flag.String("tls-key", "", "PEM key for -tls-cert")
		tlsCA      = flag.String("tls-ca", "", "CA bundle; when set, clients must present certificates")
	)
	flag.Parse()
	if err := run(*listenAddr, *idle, *tlsCert, *tlsKey, *tlsCA); err != nil {
		fmt.Fprintln(os.Stderr, "controllerd:", err)
		os.Exit(1)
	}
}

func run(listenAddr string, idleSec int, tlsCert, tlsKey, tlsCA string) error {
	ctl := controller.New(controller.Config{IdleTimeoutSec: uint16(idleSec)})
	var lis net.Listener
	var err error
	if tlsCert != "" {
		tlsCfg, cfgErr := tlsutil.LoadServerConfig(tlsCert, tlsKey, tlsCA)
		if cfgErr != nil {
			return cfgErr
		}
		lis, err = tls.Listen("tcp", listenAddr, tlsCfg)
	} else {
		lis, err = net.Listen("tcp", listenAddr)
	}
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	log.Printf("learning-switch controller on %s", lis.Addr())
	for {
		conn, err := lis.Accept()
		if err != nil {
			return fmt.Errorf("accept: %w", err)
		}
		go func() {
			if err := ctl.Serve(conn); err != nil {
				log.Printf("connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}
