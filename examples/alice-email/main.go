// The paper's end-to-end example (§III-C): an authentication-triggered
// policy — "When Alice is logged on, the computer she is using can
// communicate with the email server. When she is logged off, it cannot."
//
// The example walks the paper's 15 numbered steps: the laptop joins the
// domain and leases an address (DHCP/DNS sensors feed the Entity
// Resolution Manager), Alice logs on (the SIEM sensor derives the log-on
// from process events and a Policy Decision Point emits the rule), her
// email flow is admitted by the PCP, and at log-off the rule is revoked
// and the cached flow rules are flushed from the switch.
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/bus"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/sensors"
	"github.com/dfi-sdn/dfi/internal/services"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

// emailPDP is the example's Policy Decision Point: it subscribes to
// authentication events and emits/revokes the Alice↔email rule. Writing a
// PDP is this small.
type emailPDP struct {
	policy *dfi.PolicyManager
	ruleID dfi.RuleID
	active bool
}

func (p *emailPDP) handle(ev sensors.AuthEvent) {
	if ev.User != "alice" {
		return
	}
	if ev.LoggedOn && !p.active {
		id, err := p.policy.Insert(dfi.Rule{
			PDP:    "email-policy",
			Action: dfi.ActionAllow,
			Src:    dfi.EndpointSpec{User: "alice"},
			Dst:    dfi.EndpointSpec{Host: "email-server"},
		})
		if err != nil {
			log.Printf("email PDP: %v", err)
			return
		}
		p.ruleID, p.active = id, true
		fmt.Println(" 5. PDP inserted: Allow (user=alice) -> email-server")
		return
	}
	if !ev.LoggedOn && p.active {
		p.active = false
		if err := p.policy.Revoke(p.ruleID); err != nil {
			log.Printf("email PDP: %v", err)
			return
		}
		fmt.Println("14. PDP revoked the rule; Policy Manager told the PCP to flush")
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eventBus := bus.New()
	defer eventBus.Close()

	ctl := controller.New(controller.Config{})
	sys, err := dfi.New(
		dfi.WithBus(eventBus),
		dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
			a, b := bufpipe.New()
			go func() { _ = ctl.Serve(b) }()
			return a, nil
		}),
	)
	if err != nil {
		return err
	}
	defer sys.Close()

	// The switch, fronted by DFI.
	sw := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	swEnd, dfiEnd := bufpipe.New()
	go func() { _ = sw.ServeControl(swEnd) }()
	go func() { _ = sys.ServeSwitch(dfiEnd) }()
	if !sw.WaitConfigured(5 * time.Second) {
		return fmt.Errorf("switch never configured")
	}

	// Authoritative services with their binding sensors attached.
	dnsSensor := sensors.NewDNSSensor(eventBus)
	dhcpSensor := sensors.NewDHCPSensor(eventBus)
	dns := services.NewDNSServer(dnsSensor.Record)
	dhcp := services.NewDHCPServer(netpkt.MustParseIPv4("10.0.0.10"), 16, dhcpSensor.Record)
	siem, err := sensors.NewSIEMSensor(eventBus)
	if err != nil {
		return err
	}
	defer siem.Close()

	// The PDP subscribes to authentication events.
	pdp := &emailPDP{policy: sys.Policy()}
	if err := sys.Policy().RegisterPDP("email-policy", 50); err != nil {
		return err
	}
	sub, err := eventBus.Subscribe(sensors.TopicAuth, func(ev bus.Event) {
		if ae, ok := ev.Payload.(sensors.AuthEvent); ok {
			pdp.handle(ae)
		}
	})
	if err != nil {
		return err
	}
	defer sub.Cancel()

	laptopMAC := netpkt.MustParseMAC("02:00:00:00:00:01")
	serverMAC := netpkt.MustParseMAC("02:00:00:00:00:02")

	// Ports: delivery just narrates.
	delivered := make(chan string, 16)
	for port, name := range map[uint32]string{1: "alice-laptop", 2: "email-server"} {
		name := name
		if err := sw.AttachPort(port, func([]byte) {
			select {
			case delivered <- name:
			default:
			}
		}); err != nil {
			return err
		}
	}

	fmt.Println(" 1. alice-laptop joins the domain; DHCP assigns it an address")
	laptopIP, err := dhcp.Lease(laptopMAC)
	if err != nil {
		return err
	}
	serverIP, err := dhcp.Lease(serverMAC)
	if err != nil {
		return err
	}
	fmt.Println(" 2. DNS and DHCP sensors report the bindings to the Entity Resolution Manager")
	dns.Register("alice-laptop", laptopIP)
	dns.Register("email-server", serverIP)
	settle()

	fmt.Println(" 3. Alice logs on (her session starts processes on the endpoint)")
	fmt.Println(" 4. the SIEM sensor aggregates the process events into a log-on")
	siem.Ingest(sensors.ProcessEvent{User: "alice", Host: "alice-laptop", Delta: +3})
	settle()

	fmt.Println(" 6. Alice checks her email: the first packet misses and goes to the control plane")
	checkEmail := netpkt.BuildTCP(laptopMAC, serverMAC, laptopIP, serverIP,
		&netpkt.TCPSegment{SrcPort: 50000, DstPort: 143, Flags: netpkt.TCPSyn})
	sw.Inject(1, checkEmail)
	settle()
	fmt.Println(" 7-9. proxy -> PCP -> entity resolution -> policy: Allow")
	fmt.Println("10. the PCP installed the allow rule in table 0")
	fmt.Println("11. the proxy forwarded the packet-in to the (oblivious) controller")
	select {
	case who := <-delivered:
		fmt.Printf("12. the email server received the packet (delivered to %s)\n", who)
	case <-time.After(2 * time.Second):
		return fmt.Errorf("email flow was not delivered")
	}
	if n := sw.FlowCount(0); n == 0 {
		return fmt.Errorf("no DFI rule cached in table 0")
	}

	fmt.Println("    ... Alice reads email, then logs off ...")
	fmt.Println("13. the SIEM sensor reports the log-off")
	siem.Ingest(sensors.ProcessEvent{User: "alice", Host: "alice-laptop", Delta: -3})
	settle()

	fmt.Println("15. the PCP flushed the cached rule; the flow is gone from table 0")
	deadline := time.Now().Add(2 * time.Second)
	for sw.FlowCount(0) > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := sw.FlowCount(0); n != 0 {
		return fmt.Errorf("table 0 still has %d rules after revocation", n)
	}

	// And the same packet is now denied.
	drainDelivered(delivered)
	sw.Inject(1, checkEmail)
	settle()
	select {
	case <-delivered:
		return fmt.Errorf("flow still delivered after log-off")
	default:
	}
	fmt.Println("\nafter log-off the same flow is denied: alice-email OK")
	return nil
}

func settle() { time.Sleep(150 * time.Millisecond) }

func drainDelivered(ch chan string) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}
