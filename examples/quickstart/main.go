// Quickstart: a single software switch, an unmodified learning-switch
// controller, and DFI interposed between them — all in-process. One policy
// rule allows Alice's laptop to reach the file server; everything else is
// denied by default, before the controller ever sees a packet.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An ordinary SDN controller, oblivious to DFI.
	ctl := controller.New(controller.Config{})

	// The DFI control plane, dialing the controller for each switch.
	sys, err := dfi.New(dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
		a, b := bufpipe.New()
		go func() { _ = ctl.Serve(b) }()
		return a, nil
	}))
	if err != nil {
		return err
	}
	defer sys.Close()

	// One software switch whose control channel runs through DFI.
	sw := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	swEnd, dfiEnd := bufpipe.New()
	go func() { _ = sw.ServeControl(swEnd) }()
	go func() { _ = sys.ServeSwitch(dfiEnd) }()
	if !sw.WaitConfigured(5 * time.Second) {
		return fmt.Errorf("switch never finished its OpenFlow handshake")
	}

	// Three endpoints.
	laptop := endpoint{name: "alice-laptop", mac: mustMAC("02:00:00:00:00:01"), ip: mustIP("10.0.0.1"), port: 1}
	files := endpoint{name: "file-server", mac: mustMAC("02:00:00:00:00:02"), ip: mustIP("10.0.0.2"), port: 2}
	kiosk := endpoint{name: "lobby-kiosk", mac: mustMAC("02:00:00:00:00:03"), ip: mustIP("10.0.0.3"), port: 3}
	for _, e := range []endpoint{laptop, files, kiosk} {
		e := e
		if err := sw.AttachPort(e.port, func(frame []byte) {
			k, err := netpkt.ExtractFlowKey(frame)
			if err == nil {
				fmt.Printf("  [%s] received %s\n", e.name, k)
			}
		}); err != nil {
			return err
		}
		// Identifier bindings, as DFI's DHCP/DNS sensors would report.
		sys.Entity().BindIPMAC(e.ip, e.mac)
		sys.Entity().BindHostIP(e.name, e.ip)
	}

	// Policy: one rule. Everything unmatched is denied by default.
	if err := sys.Policy().RegisterPDP("quickstart", 50); err != nil {
		return err
	}
	if _, err := sys.Policy().Insert(dfi.Rule{
		PDP:    "quickstart",
		Action: dfi.ActionAllow,
		Src:    dfi.EndpointSpec{Host: laptop.name},
		Dst:    dfi.EndpointSpec{Host: files.name},
	}); err != nil {
		return err
	}
	fmt.Println("policy: Allow alice-laptop -> file-server; default deny otherwise")

	fmt.Println("\nalice-laptop opens a connection to file-server (allowed):")
	sw.Inject(laptop.port, syn(laptop, files))
	time.Sleep(200 * time.Millisecond)

	fmt.Println("\nlobby-kiosk tries the same server (no policy: denied before the controller):")
	sw.Inject(kiosk.port, syn(kiosk, files))
	time.Sleep(200 * time.Millisecond)

	stats := sys.Proxy().Stats()
	fmt.Printf("\nDFI proxy: %d packet-ins, %d denied, %d forwarded to the controller\n",
		stats.PacketIns, stats.Denied, stats.Forwarded)
	fmt.Printf("switch: %d rules in DFI's table 0, %d in the controller's tables\n",
		sw.FlowCount(0), sw.TotalFlowCount()-sw.FlowCount(0))
	if stats.Denied == 0 {
		return fmt.Errorf("expected the kiosk flow to be denied")
	}
	fmt.Fprintln(os.Stdout, "\nquickstart OK")
	return nil
}

type endpoint struct {
	name string
	mac  netpkt.MAC
	ip   netpkt.IPv4
	port uint32
}

func syn(from, to endpoint) []byte {
	return netpkt.BuildTCP(from.mac, to.mac, from.ip, to.ip,
		&netpkt.TCPSegment{SrcPort: 40000, DstPort: 445, Flags: netpkt.TCPSyn})
}

func mustMAC(s string) netpkt.MAC { return netpkt.MustParseMAC(s) }

func mustIP(s string) netpkt.IPv4 { return netpkt.MustParseIPv4(s) }
