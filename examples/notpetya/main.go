// The paper's security evaluation (§V-B) as a runnable scenario: a
// NotPetya surrogate takes a foothold in a simulated 92-host enterprise at
// 09:00 and tries to spread for the rest of the day, under each of the
// three access-control conditions. The whole day runs in virtual time in a
// few seconds.
//
//	go run ./examples/notpetya [-seed N] [-hour H]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/dfi-sdn/dfi/internal/testbed"
)

func main() {
	var (
		seed = flag.Int64("seed", 3, "population/script/worm seed")
		hour = flag.Int("hour", 9, "foothold hour (0-23)")
	)
	flag.Parse()
	if err := run(*seed, *hour); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, hour int) error {
	footholdAt := time.Duration(hour) * time.Hour
	fmt.Printf("NotPetya surrogate, foothold at %02d:00, 86 end hosts + 6 servers\n\n", hour)

	for _, cond := range []testbed.Condition{
		testbed.ConditionBaseline, testbed.ConditionSRBAC, testbed.ConditionATRBAC,
	} {
		tb, err := testbed.New(testbed.Config{Condition: cond, Seed: seed})
		if err != nil {
			return err
		}
		foothold := tb.FootholdHost(footholdAt)
		res, err := tb.RunInfection(foothold, footholdAt, footholdAt+8*time.Hour)
		if err != nil {
			return err
		}

		fmt.Printf("== %s (foothold %s) ==\n", cond, foothold)
		first, spread := res.FirstSpread()
		if !spread {
			fmt.Printf("   the worm never spread beyond the foothold\n")
		} else {
			fmt.Printf("   first infection beyond the foothold: +%s\n", round(first))
			for _, mark := range []time.Duration{
				time.Minute, 5 * time.Minute, 15 * time.Minute,
				30 * time.Minute, time.Hour, 2 * time.Hour,
			} {
				fmt.Printf("   infected after %-6s %3d / %d\n", round(mark), res.InfectedBy(mark), res.TotalHosts)
			}
		}
		fmt.Printf("   final: %d / %d hosts infected\n\n", len(res.Infections), res.TotalHosts)
	}

	fmt.Println("The AT-RBAC policy — only expressible with DFI's event-driven rules —")
	fmt.Println("slows the worm and leaves part of the network uninfected; off-hours")
	fmt.Println("footholds are isolated entirely (try -hour 3).")
	return nil
}

func round(d time.Duration) time.Duration { return d.Round(time.Second) }
