// Quarantine-upon-compromise: one of the PDP types the paper's
// architecture is built to host (§III-B). An allow-all baseline keeps the
// network open; when a sensor flags a host as compromised, the quarantine
// PDP emits top-priority deny rules that isolate it — and because the
// Policy Manager's conflict check flushes the lower-priority allow rules'
// cached flow rules, even flows already in progress are cut mid-stream.
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/bus"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/core/pdp"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/sensors"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eventBus := bus.New()
	defer eventBus.Close()

	ctl := controller.New(controller.Config{})
	sys, err := dfi.New(
		dfi.WithBus(eventBus),
		dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
			a, b := bufpipe.New()
			go func() { _ = ctl.Serve(b) }()
			return a, nil
		}),
	)
	if err != nil {
		return err
	}
	defer sys.Close()

	sw := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	swEnd, dfiEnd := bufpipe.New()
	go func() { _ = sw.ServeControl(swEnd) }()
	go func() { _ = sys.ServeSwitch(dfiEnd) }()
	if !sw.WaitConfigured(5 * time.Second) {
		return fmt.Errorf("switch never configured")
	}

	// Two PDPs at different priorities: an open baseline, and quarantine
	// above it.
	allowAll, err := pdp.NewAllowAll(sys.Policy())
	if err != nil {
		return err
	}
	if err := allowAll.Enable(); err != nil {
		return err
	}
	quarantine, err := pdp.NewQuarantine(sys.Policy())
	if err != nil {
		return err
	}
	if err := quarantine.Start(eventBus); err != nil {
		return err
	}
	defer quarantine.Stop()

	// Endpoints.
	wsMAC := netpkt.MustParseMAC("02:00:00:00:00:01")
	dbMAC := netpkt.MustParseMAC("02:00:00:00:00:02")
	wsIP := netpkt.MustParseIPv4("10.0.0.1")
	dbIP := netpkt.MustParseIPv4("10.0.0.2")
	sys.Entity().BindIPMAC(wsIP, wsMAC)
	sys.Entity().BindIPMAC(dbIP, dbMAC)
	sys.Entity().BindHostIP("workstation", wsIP)
	sys.Entity().BindHostIP("database", dbIP)

	received := make(chan struct{}, 64)
	if err := sw.AttachPort(1, func([]byte) {}); err != nil {
		return err
	}
	if err := sw.AttachPort(2, func([]byte) {
		select {
		case received <- struct{}{}:
		default:
		}
	}); err != nil {
		return err
	}

	packet := netpkt.BuildTCP(wsMAC, dbMAC, wsIP, dbIP,
		&netpkt.TCPSegment{SrcPort: 55000, DstPort: 5432, Flags: netpkt.TCPSyn})

	fmt.Println("baseline: allow-all — workstation reaches the database")
	sw.Inject(1, packet)
	if !waitOne(received, 2*time.Second) {
		return fmt.Errorf("baseline flow was not delivered")
	}
	fmt.Printf("   delivered; %d flow rule(s) cached in table 0\n\n", sw.FlowCount(0))

	fmt.Println("an endpoint sensor flags the workstation as compromised...")
	if err := eventBus.Publish(bus.Event{
		Topic:   sensors.TopicCompromise,
		Payload: sensors.CompromiseEvent{Host: "workstation"},
	}); err != nil {
		return err
	}
	deadline := time.Now().Add(2 * time.Second)
	for !quarantine.Quarantined("workstation") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !quarantine.Quarantined("workstation") {
		return fmt.Errorf("quarantine PDP never reacted")
	}
	// The conflict check flushed the cached allow rules for the host.
	time.Sleep(100 * time.Millisecond)
	fmt.Println("   quarantine PDP emitted top-priority deny rules and flushed cached flows")

	drain(received)
	sw.Inject(1, packet) // the very same flow
	if waitOne(received, 300*time.Millisecond) {
		return fmt.Errorf("quarantined host still reached the database")
	}
	fmt.Println("   the in-progress flow is now cut: packets stop at table 0")

	fmt.Println("\nincident response clears the host...")
	if err := eventBus.Publish(bus.Event{
		Topic:   sensors.TopicCompromise,
		Payload: sensors.CompromiseEvent{Host: "workstation", Cleared: true},
	}); err != nil {
		return err
	}
	deadline = time.Now().Add(2 * time.Second)
	for quarantine.Quarantined("workstation") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)

	drain(received)
	sw.Inject(1, packet)
	if !waitOne(received, 2*time.Second) {
		return fmt.Errorf("flow still blocked after quarantine release")
	}
	fmt.Println("   connectivity restored: quarantine OK")
	return nil
}

func waitOne(ch chan struct{}, d time.Duration) bool {
	select {
	case <-ch:
		return true
	case <-time.After(d):
		return false
	}
}

func drain(ch chan struct{}) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}
