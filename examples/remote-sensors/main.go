// Remote sensors: the paper's deployment runs identifier-binding sensors
// next to their authoritative sources (DNS/DHCP servers, SIEM indexers)
// and ships events to the DFI control plane over a message bus. This
// example runs that split across a real TCP connection: a "branch office"
// publisher streams DHCP, DNS and process events to the control plane's
// sensor sink, and an authentication-triggered policy reacts.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/bus"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/sensors"
	"github.com/dfi-sdn/dfi/internal/services"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// ---- headquarters: the DFI control plane ----
	ctl := controller.New(controller.Config{})
	sys, err := dfi.New(dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
		a, b := bufpipe.New()
		go func() { _ = ctl.Serve(b) }()
		return a, nil
	}))
	if err != nil {
		return err
	}
	defer sys.Close()

	// The sensor sink: remote publishers stream typed events into the
	// system's bus, exactly as dfid's -sensor-listen does.
	codec := bus.NewCodec()
	sensors.RegisterWireTypes(codec)
	sinkLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer sinkLis.Close()
	go func() { _ = bus.ServeSink(sinkLis, codec, sys.EventBus()) }()
	fmt.Printf("control plane: sensor sink on %s\n", sinkLis.Addr())

	// A SIEM sensor at HQ derives log-ons from the raw process events the
	// branch publishes.
	siem, err := sensors.NewSIEMSensor(sys.EventBus())
	if err != nil {
		return err
	}
	defer siem.Close()

	// One switch, two endpoints.
	sw := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	swEnd, dfiEnd := bufpipe.New()
	go func() { _ = sw.ServeControl(swEnd) }()
	go func() { _ = sys.ServeSwitch(dfiEnd) }()
	if !sw.WaitConfigured(5 * time.Second) {
		return fmt.Errorf("switch never configured")
	}
	laptopMAC := netpkt.MustParseMAC("02:00:00:00:00:01")
	serverMAC := netpkt.MustParseMAC("02:00:00:00:00:02")
	delivered := make(chan struct{}, 8)
	if err := sw.AttachPort(1, func([]byte) {}); err != nil {
		return err
	}
	if err := sw.AttachPort(2, func([]byte) {
		select {
		case delivered <- struct{}{}:
		default:
		}
	}); err != nil {
		return err
	}

	// Policy: Alice's machine may reach the file server while she is on.
	if err := sys.Policy().RegisterPDP("hq", 50); err != nil {
		return err
	}
	if _, err := sys.Policy().Insert(dfi.Rule{
		PDP: "hq", Action: dfi.ActionAllow,
		Src: dfi.EndpointSpec{User: "alice"},
		Dst: dfi.EndpointSpec{Host: "file-server"},
	}); err != nil {
		return err
	}

	// ---- branch office: sensors next to their authoritative sources ----
	conn, err := net.Dial("tcp", sinkLis.Addr().String())
	if err != nil {
		return err
	}
	defer conn.Close()
	remote := bus.NewRemotePublisher(conn, codec)
	fmt.Println("branch office: connected, streaming sensor events over TCP")

	// The branch's DHCP and DNS servers feed remote sensors.
	dhcp := services.NewDHCPServer(netpkt.MustParseIPv4("10.5.0.10"), 16,
		func(ip netpkt.IPv4, mac netpkt.MAC, removed bool) {
			_ = remote.Publish(bus.Event{Topic: sensors.TopicDHCP,
				Payload: sensors.DHCPBinding{IP: ip, MAC: mac, Removed: removed}})
		})
	dns := services.NewDNSServer(func(host string, ip netpkt.IPv4, removed bool) {
		_ = remote.Publish(bus.Event{Topic: sensors.TopicDNS,
			Payload: sensors.DNSBinding{Host: host, IP: ip, Removed: removed}})
	})

	laptopIP, err := dhcp.Lease(laptopMAC)
	if err != nil {
		return err
	}
	serverIP, err := dhcp.Lease(serverMAC)
	if err != nil {
		return err
	}
	dns.Register("alice-laptop", laptopIP)
	dns.Register("file-server", serverIP)
	fmt.Println("branch office: DHCP leases + DNS records published")

	// Endpoint logs stream raw process events; HQ's SIEM derives the
	// log-on.
	if err := remote.Publish(bus.Event{Topic: sensors.TopicProcess,
		Payload: sensors.ProcessEvent{User: "alice", Host: "alice-laptop", Delta: +2}}); err != nil {
		return err
	}
	fmt.Println("branch office: alice's endpoint reports process activity")

	// Wait for the bindings to land at HQ.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if users := sys.Entity().UsersOn("alice-laptop"); len(users) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if users := sys.Entity().UsersOn("alice-laptop"); len(users) != 1 {
		return fmt.Errorf("log-on never arrived at the control plane")
	}
	fmt.Println("control plane: bindings current (alice @ alice-laptop)")

	// The flow is admitted using identity that traveled over the wire.
	packet := netpkt.BuildTCP(laptopMAC, serverMAC, laptopIP, serverIP,
		&netpkt.TCPSegment{SrcPort: 44000, DstPort: 445, Flags: netpkt.TCPSyn})
	sw.Inject(1, packet)
	select {
	case <-delivered:
		fmt.Println("flow admitted: alice-laptop reached file-server")
	case <-time.After(5 * time.Second):
		return fmt.Errorf("flow was not admitted")
	}

	// Alice logs off at the branch. The static user-based rule stays in
	// the policy database, but DFI resolves identifiers at DECISION time
	// (paper §III-B): the next NEW flow finds no user on the laptop and
	// is denied. (Cutting flows that are already cached takes a PDP
	// revocation, as the alice-email example shows.)
	if err := remote.Publish(bus.Event{Topic: sensors.TopicProcess,
		Payload: sensors.ProcessEvent{User: "alice", Host: "alice-laptop", Delta: -2}}); err != nil {
		return err
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(sys.Entity().UsersOn("alice-laptop")) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(sys.Entity().UsersOn("alice-laptop")) != 0 {
		return fmt.Errorf("log-off never arrived at the control plane")
	}
	drain(delivered)
	newFlow := netpkt.BuildTCP(laptopMAC, serverMAC, laptopIP, serverIP,
		&netpkt.TCPSegment{SrcPort: 44001, DstPort: 445, Flags: netpkt.TCPSyn})
	sw.Inject(1, newFlow)
	select {
	case <-delivered:
		return fmt.Errorf("new flow still admitted after remote log-off")
	case <-time.After(300 * time.Millisecond):
	}
	fmt.Println("after the remote log-off, new flows are denied: remote-sensors OK")
	return nil
}

func drain(ch chan struct{}) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}
