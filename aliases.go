package dfi

import (
	"github.com/dfi-sdn/dfi/internal/bus"
	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/pdp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/core/proxy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

// Aliases re-exporting the library's core types so downstream users can name
// them without reaching into internal packages.

// Policy model.
type (
	// Action is a policy rule's disposition (Allow or Deny).
	Action = policy.Action
	// Rule is one policy rule: (Action, FlowProperties, Source, Destination).
	Rule = policy.Rule
	// RuleID identifies an inserted rule for revocation and flushing.
	RuleID = policy.RuleID
	// FlowProperties constrains EtherType and IP protocol.
	FlowProperties = policy.FlowProperties
	// EndpointSpec is one side of a rule: username, hostname, IP, port,
	// MAC, switch port and DPID, each value-or-wildcard.
	EndpointSpec = policy.EndpointSpec
	// FlowView is an enriched flow presented to policy evaluation.
	FlowView = policy.FlowView
	// EndpointAttrs is the enriched identity of one flow endpoint.
	EndpointAttrs = policy.EndpointAttrs
	// PolicyDecision is the policy manager's verdict for one flow.
	PolicyDecision = policy.Decision
	// PolicyManager stores rules and answers per-flow queries.
	PolicyManager = policy.Manager
)

// Policy actions and reserved ids.
const (
	ActionAllow = policy.ActionAllow
	ActionDeny  = policy.ActionDeny
	// DefaultDenyID tags flow rules from the implicit default deny.
	DefaultDenyID = policy.DefaultDenyID
)

// Entity resolution.
type (
	// EntityManager maintains identifier bindings and resolves packets to
	// high-level identities.
	EntityManager = entity.Manager
	// Location is a switch attachment point (DPID, port).
	Location = entity.Location
	// Observed is a packet endpoint's low-level identifiers.
	Observed = entity.Observed
	// Resolution is an enriched endpoint identity.
	Resolution = entity.Resolution
)

// ErrInconsistent reports spoofed identifiers (see EntityManager.Resolve).
var ErrInconsistent = entity.ErrInconsistent

// Control-plane components.
type (
	// PCP is the Policy Compilation Point.
	PCP = pcp.PCP
	// PCPDecision is the PCP's admission outcome for one flow.
	PCPDecision = pcp.Decision
	// Proxy is the controller-oblivious interposition proxy.
	Proxy = proxy.Proxy
)

// PDPs.
type (
	// Roster is the role structure RBAC PDPs enforce.
	Roster = pdp.Roster
	// AllowAllPDP is the no-access-control baseline PDP.
	AllowAllPDP = pdp.AllowAll
	// SRBACPDP is the static role-based access control PDP.
	SRBACPDP = pdp.SRBAC
	// ATRBACPDP is the authentication-triggered RBAC PDP.
	ATRBACPDP = pdp.ATRBAC
	// QuarantinePDP isolates compromised hosts.
	QuarantinePDP = pdp.Quarantine
)

// Addressing.
type (
	// MAC is a 48-bit Ethernet address.
	MAC = netpkt.MAC
	// IPv4 is a 32-bit IPv4 address.
	IPv4 = netpkt.IPv4
)

// Clocks and latency models.
type (
	// Clock abstracts time (wall clock or simulated).
	Clock = simclock.Clock
	// LatencyModel samples simulated query costs.
	LatencyModel = store.LatencyModel
)

// Event bus.
type (
	// Bus is the pub/sub bus carrying sensor events.
	Bus = bus.Bus
	// BusEvent is one routed event.
	BusEvent = bus.Event
)

// Observability.
type (
	// MetricsRegistry holds a System's instruments and renders them in
	// Prometheus text exposition format (see System.Metrics, WithMetrics).
	MetricsRegistry = obs.Registry
	// AdmissionTrace is one flow's recorded trip through admission:
	// per-stage durations and the outcome.
	AdmissionTrace = obs.AdmissionTrace
	// TraceRing retains the most recent admission traces (see
	// System.Traces, WithAdmissionTracing).
	TraceRing = obs.TraceRing
	// TraceOutcome is an admission trace's disposition.
	TraceOutcome = obs.Outcome
)

// Admission trace outcomes.
const (
	OutcomeAllow        = obs.OutcomeAllow
	OutcomeDeny         = obs.OutcomeDeny
	OutcomeError        = obs.OutcomeError
	OutcomeOverloadDrop = obs.OutcomeOverloadDrop
)

// NewMetricsRegistry returns an empty metrics registry for WithMetrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Convenience wildcard-field constructors for building EndpointSpecs.

// IPOf returns a pointer to ip for use in an EndpointSpec.
func IPOf(ip IPv4) *IPv4 { return &ip }

// MACOf returns a pointer to m for use in an EndpointSpec.
func MACOf(m MAC) *MAC { return &m }

// PortOf returns a pointer to p for use in an EndpointSpec.
func PortOf(p uint16) *uint16 { return &p }

// ParseMAC parses a colon-separated MAC address.
func ParseMAC(s string) (MAC, error) { return netpkt.ParseMAC(s) }

// ParseIPv4 parses a dotted-quad IPv4 address.
func ParseIPv4(s string) (IPv4, error) { return netpkt.ParseIPv4(s) }
