package dfi_test

import (
	"io"
	"testing"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

func TestAddressHelpers(t *testing.T) {
	mac, err := dfi.ParseMAC("02:00:00:00:00:01")
	if err != nil {
		t.Fatal(err)
	}
	if p := dfi.MACOf(mac); p == nil || *p != mac {
		t.Fatal("MACOf wrong")
	}
	ip, err := dfi.ParseIPv4("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if p := dfi.IPOf(ip); p == nil || *p != ip {
		t.Fatal("IPOf wrong")
	}
	if p := dfi.PortOf(443); p == nil || *p != 443 {
		t.Fatal("PortOf wrong")
	}
	if _, err := dfi.ParseMAC("bogus"); err == nil {
		t.Fatal("bad MAC accepted")
	}
	if _, err := dfi.ParseIPv4("bogus"); err == nil {
		t.Fatal("bad IP accepted")
	}
}

func TestSystemOptionsExercised(t *testing.T) {
	ctl := controller.New(controller.Config{})
	clk := simclock.Real{}
	sys, err := dfi.New(
		dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
			a, b := bufpipe.New()
			go func() { _ = ctl.Serve(b) }()
			return a, nil
		}),
		dfi.WithClock(clk),
		dfi.WithRuleTimeouts(60, 5),
		dfi.WithAdmissionQueue(16, 2),
		dfi.WithLatencyProfile(store.Fixed(0), store.Fixed(0), nil, nil),
		dfi.WithWildcardCaching(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.PCP() == nil || sys.EventBus() == nil || sys.DFIProxy() == nil {
		t.Fatal("accessor returned nil")
	}
	// Constants and aliases are wired to the same underlying values.
	if dfi.ActionAllow.String() != "Allow" || dfi.ActionDeny.String() != "Deny" {
		t.Fatal("action aliases wrong")
	}
	if dfi.DefaultDenyID != 0 {
		t.Fatal("DefaultDenyID changed")
	}
	var lm dfi.LatencyModel = store.Fixed(time.Millisecond)
	if lm.Sample() != time.Millisecond {
		t.Fatal("latency model alias broken")
	}
	if dfi.ErrInconsistent == nil {
		t.Fatal("ErrInconsistent alias missing")
	}
}
