package dfi_test

import (
	"io"
	"net"
	"testing"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/core/pdp"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

func TestNewRequiresDialer(t *testing.T) {
	if _, err := dfi.New(); err == nil {
		t.Fatal("New without a controller dialer must fail")
	}
}

func TestSystemCloseIsClean(t *testing.T) {
	sys, err := dfi.New(dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
		a, b := bufpipe.New()
		ctl := controller.New(controller.Config{})
		go func() { _ = ctl.Serve(b) }()
		return a, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys.Close() // double close must not panic
}

// TestEndToEndOverTCP deploys the full stack the way cmd/dfid does: real
// TCP loopback sockets between the switch, the DFI proxy and the
// controller.
func TestEndToEndOverTCP(t *testing.T) {
	// Controller listener.
	ctlLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctlLis.Close()
	ctl := controller.New(controller.Config{})
	go func() {
		for {
			conn, err := ctlLis.Accept()
			if err != nil {
				return
			}
			go func() { _ = ctl.Serve(conn) }()
		}
	}()

	// DFI system dialing the controller over TCP.
	sys, err := dfi.New(dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
		return net.Dial("tcp", ctlLis.Addr().String())
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// DFI listener accepting switches.
	dfiLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dfiLis.Close()
	go func() {
		for {
			conn, err := dfiLis.Accept()
			if err != nil {
				return
			}
			go func() { _ = sys.ServeSwitch(conn) }()
		}
	}()

	// The switch dials DFI over TCP, as cmd/switchd does.
	sw := switchsim.NewSwitch(switchsim.Config{DPID: 0x42})
	swConn, err := net.Dial("tcp", dfiLis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer swConn.Close()
	go func() { _ = sw.ServeControl(swConn) }()
	if !sw.WaitConfigured(5 * time.Second) {
		t.Fatal("switch never configured over TCP")
	}

	// Wire endpoints and policy.
	macA := netpkt.MustParseMAC("02:00:00:00:00:01")
	macB := netpkt.MustParseMAC("02:00:00:00:00:02")
	ipA := netpkt.MustParseIPv4("10.0.0.1")
	ipB := netpkt.MustParseIPv4("10.0.0.2")
	sys.Entity().BindIPMAC(ipA, macA)
	sys.Entity().BindIPMAC(ipB, macB)
	sys.Entity().BindHostIP("a", ipA)
	sys.Entity().BindHostIP("b", ipB)
	if err := sys.Policy().RegisterPDP("t", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Policy().Insert(dfi.Rule{
		PDP: "t", Action: dfi.ActionAllow,
		Src: dfi.EndpointSpec{Host: "a"}, Dst: dfi.EndpointSpec{Host: "b"},
	}); err != nil {
		t.Fatal(err)
	}

	gotB := make(chan struct{}, 8)
	if err := sw.AttachPort(1, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := sw.AttachPort(2, func([]byte) {
		select {
		case gotB <- struct{}{}:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}

	allowed := netpkt.BuildTCP(macA, macB, ipA, ipB, &netpkt.TCPSegment{SrcPort: 1000, DstPort: 80, Flags: netpkt.TCPSyn})
	sw.Inject(1, allowed)
	select {
	case <-gotB:
	case <-time.After(5 * time.Second):
		t.Fatal("allowed flow not delivered over TCP deployment")
	}

	denied := netpkt.BuildTCP(macB, macA, ipB, ipA, &netpkt.TCPSegment{SrcPort: 2000, DstPort: 80, Flags: netpkt.TCPSyn})
	sw.Inject(2, denied) // b→a has no allow rule
	deadline := time.Now().Add(3 * time.Second)
	for sys.DFIProxy().Stats().Denied == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if sys.DFIProxy().Stats().Denied == 0 {
		t.Fatal("reverse flow was not denied")
	}
}

func TestPaperLatencyProfileShapes(t *testing.T) {
	binding, policyQ, pcpProc, proxyFwd := dfi.PaperLatencyProfile(1)
	check := func(name string, m dfi.LatencyModel, wantMean time.Duration) {
		var sum time.Duration
		const n = 2000
		for i := 0; i < n; i++ {
			d := m.Sample()
			if d < 0 {
				t.Fatalf("%s: negative sample", name)
			}
			sum += d
		}
		mean := sum / n
		if mean < wantMean/2 || mean > wantMean*2 {
			t.Errorf("%s mean = %v, want ≈%v", name, mean, wantMean)
		}
	}
	check("binding", binding, 2410*time.Microsecond)
	check("policy", policyQ, 2520*time.Microsecond)
	check("pcp", pcpProc, 390*time.Microsecond)
	check("proxy", proxyFwd, 160*time.Microsecond)
}

func TestRosterTypeAliasUsable(t *testing.T) {
	// The facade's aliases must be usable as the internal types.
	r := dfi.Roster{
		EnclaveOf: map[string]string{"h1": "e1", "h2": "e1"},
		Servers:   []string{"h2"},
	}
	var _ pdp.Roster = r
	if peers := r.Peers("h1"); len(peers) != 1 || peers[0] != "h2" {
		t.Fatalf("Peers = %v", peers)
	}
}
