package dfi_test

import (
	"io"
	"testing"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

// TestMultiSwitchPerHopEnforcement wires two switches with an inter-switch
// link, both fronted by one DFI system, and verifies the paper's per-hop
// property: the correct policy is applied at EACH switch a flow traverses
// (§III-B), and a revocation flushes every hop.
func TestMultiSwitchPerHopEnforcement(t *testing.T) {
	ctl := controller.New(controller.Config{})
	sys, err := dfi.New(dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
		a, b := bufpipe.New()
		go func() { _ = ctl.Serve(b) }()
		return a, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	swA := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	swB := switchsim.NewSwitch(switchsim.Config{DPID: 2})
	for _, sw := range []*switchsim.Switch{swA, swB} {
		swEnd, dfiEnd := bufpipe.New()
		sw := sw
		go func() { _ = sw.ServeControl(swEnd) }()
		go func() { _ = sys.ServeSwitch(dfiEnd) }()
		t.Cleanup(func() {
			swEnd.Close()
			dfiEnd.Close()
		})
	}
	if !swA.WaitConfigured(5*time.Second) || !swB.WaitConfigured(5*time.Second) {
		t.Fatal("switches never configured")
	}

	// Inter-switch link on port 10 of each.
	if err := swA.AttachPort(10, func(f []byte) { go swB.Inject(10, f) }); err != nil {
		t.Fatal(err)
	}
	if err := swB.AttachPort(10, func(f []byte) { go swA.Inject(10, f) }); err != nil {
		t.Fatal(err)
	}

	macA := netpkt.MustParseMAC("02:00:00:00:00:01")
	macB := netpkt.MustParseMAC("02:00:00:00:00:02")
	ipA := netpkt.MustParseIPv4("10.0.0.1")
	ipB := netpkt.MustParseIPv4("10.0.0.2")
	sys.Entity().BindIPMAC(ipA, macA)
	sys.Entity().BindIPMAC(ipB, macB)
	sys.Entity().BindHostIP("host-a", ipA)
	sys.Entity().BindHostIP("host-b", ipB)

	gotB := make(chan []byte, 16)
	if err := swA.AttachPort(1, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := swB.AttachPort(1, func(f []byte) {
		select {
		case gotB <- f:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}

	if err := sys.Policy().RegisterPDP("t", 50); err != nil {
		t.Fatal(err)
	}
	ruleID, err := sys.Policy().Insert(dfi.Rule{
		PDP: "t", Action: dfi.ActionAllow,
		Src: dfi.EndpointSpec{Host: "host-a"},
		Dst: dfi.EndpointSpec{Host: "host-b"},
	})
	if err != nil {
		t.Fatal(err)
	}

	syn := netpkt.BuildTCP(macA, macB, ipA, ipB,
		&netpkt.TCPSegment{SrcPort: 1111, DstPort: 80, Flags: netpkt.TCPSyn})
	swA.Inject(1, syn)
	select {
	case <-gotB:
	case <-time.After(5 * time.Second):
		t.Fatal("flow never crossed the two-switch path")
	}

	// Per-hop enforcement: BOTH switches hold a DFI rule for the flow.
	waitFor(t, func() bool { return swA.FlowCount(0) >= 1 && swB.FlowCount(0) >= 1 },
		"DFI rules on both hops")

	// Revocation flushes both hops.
	if err := sys.Policy().Revoke(ruleID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return swA.FlowCount(0) == 0 && swB.FlowCount(0) == 0 },
		"flush on both hops")

	// The same flow is now denied at the FIRST hop; host B sees nothing.
	drainBytes(gotB)
	deniedBefore := sys.DFIProxy().Stats().Denied
	swA.Inject(1, syn)
	waitFor(t, func() bool { return sys.DFIProxy().Stats().Denied > deniedBefore }, "denied at hop 1")
	select {
	case <-gotB:
		t.Fatal("denied flow still delivered")
	case <-time.After(100 * time.Millisecond):
	}
	// And switch B never saw a packet-in for it (blocked upstream).
	if swB.FlowCount(0) != 0 {
		t.Fatal("denied flow reached the second hop")
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

func drainBytes(ch chan []byte) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}
