package dfi_test

import (
	"io"
	"sync"
	"testing"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/obs/slo"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/simclock"
)

// TestSLOConcurrentHammer drives the four contending parties at once — the
// SLO engine evaluating (plus its own millisecond ticker), the Prometheus
// endpoint scraping, admission load, and policy churn — against one System.
// Run under -race this is the data-race gate for the SLO engine's snapshot
// reads against the hot path's atomic writes.
func TestSLOConcurrentHammer(t *testing.T) {
	sys, err := dfi.New(
		dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
			a, b := bufpipe.New()
			ctl := controller.New(controller.Config{})
			go func() { _ = ctl.Serve(b) }()
			return a, nil
		}),
		dfi.WithSLO(),
		dfi.WithSLOInterval(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	sys.Entity().BindIPMAC(netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseMAC("02:00:00:00:00:01"))
	sys.Entity().BindHostIP("h1", netpkt.MustParseIPv4("10.0.0.1"))
	sys.Entity().BindUserHost("alice", "h1")
	sys.PCP().AttachSwitch(1, nopSwitch{})
	if err := sys.Policy().RegisterPDP("hammer", 50); err != nil {
		t.Fatal(err)
	}

	const iters = 400
	var wg sync.WaitGroup

	// Admission load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := &pcp.Request{DPID: 1, PacketIn: &openflow.PacketIn{
			BufferID: openflow.NoBuffer,
			Reason:   openflow.PacketInReasonNoMatch,
			Match:    &openflow.Match{InPort: openflow.U32(3)},
			Data:     benchFrame(),
		}}
		for i := 0; i < iters; i++ {
			sys.PCP().Process(req)
		}
	}()

	// Policy churn: every insert/revoke mutates the TTE histogram the SLO
	// engine is snapshotting.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			id, err := sys.Policy().Insert(policy.Rule{
				PDP:    "hammer",
				Action: policy.ActionAllow,
				Src:    policy.EndpointSpec{User: "alice"},
			})
			if err != nil {
				t.Error(err)
				return
			}
			if err := sys.Policy().Revoke(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// SLO evaluation, racing the ticker Run started.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			sys.SLO().Evaluate()
		}
	}()

	// Prometheus scrapes (quantile lines walk the same buckets).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = sys.Metrics().WritePrometheus(io.Discard)
		}
	}()

	wg.Wait()
	rep := sys.SLO().Evaluate()
	if len(rep.Statuses) != 4 {
		t.Fatalf("after hammer, SLO report = %+v", rep)
	}
}

// TestAdmissionZeroAllocWithSLO extends the hot-path gate: with an SLO
// engine attached to the admission registry (quantile objective over the
// stage histogram, rate objective over the processed counter) and already
// evaluating, a cache-hit re-admission must still allocate nothing — the
// engine only reads snapshots, never touching the hot path.
func TestAdmissionZeroAllocWithSLO(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	pm := policyBenchManager(t, 1000)
	erm := entity.NewManager()
	erm.BindIPMAC(netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseMAC("02:00:00:00:00:01"))
	erm.BindHostIP("h1", netpkt.MustParseIPv4("10.0.0.1"))
	erm.BindUserHost("alice", "h1")
	reg := obs.NewRegistry()
	p := pcp.New(pcp.Config{Entity: erm, Policy: pm, Obs: reg})
	p.AttachSwitch(1, nopSwitch{})

	engine := slo.New(simclock.Real{}, reg,
		slo.Quantile("admission-p99", `dfi_pcp_stage_seconds{stage="total"}`,
			reg.FindHistogramVec("dfi_pcp_stage_seconds").With("total"),
			0.99, time.Second, time.Minute),
		slo.Rate("packetin-rate", "dfi_pcp_processed_total", func() uint64 {
			return reg.FindCounter("dfi_pcp_processed_total").Value()
		}, 1e9, time.Minute),
	)
	defer engine.Close()

	req := &pcp.Request{DPID: 1, PacketIn: &openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		Reason:   openflow.PacketInReasonNoMatch,
		Match:    &openflow.Match{InPort: openflow.U32(3)},
		Data:     benchFrame(),
	}}
	p.Process(req) // prime the decision cache
	engine.Evaluate()
	engine.Evaluate()

	if allocs := testing.AllocsPerRun(200, func() { p.Process(req) }); allocs != 0 {
		t.Fatalf("cache-hit admission with SLO attached allocates %.1f objects/op, want 0", allocs)
	}
	if rep := engine.Evaluate(); len(rep.Statuses) != 2 {
		t.Fatalf("engine lost objectives: %+v", rep)
	}
}
