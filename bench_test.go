// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V), plus ablations for the design choices DESIGN.md calls out. Run:
//
//	go test -bench=. -benchmem
//
// Table/figure benches report their headline numbers via b.ReportMetric in
// the paper's units; cmd/dfi-bench prints the full tables/series.
package dfi_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/cbench"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/experiments"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/switchsim"
	"github.com/dfi-sdn/dfi/internal/testbed"
)

// newBenchSystem wires a calibrated (or native) DFI control plane fronting
// a reactive controller, and returns a ready cbench attached to it.
func newBenchSystem(b *testing.B, calibrated bool, queueDepth, workers int) (*dfi.System, *cbench.Bench) {
	b.Helper()
	ctl := controller.New(controller.Config{MaxConcurrent: 256})
	opts := []dfi.Option{
		dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
			a, c := bufpipe.New()
			go func() { _ = ctl.Serve(c) }()
			return a, nil
		}),
		dfi.WithAdmissionQueue(queueDepth, workers),
	}
	if calibrated {
		binding, policyQ, pcpProc, proxyFwd := dfi.PaperLatencyProfile(42)
		opts = append(opts, dfi.WithLatencyProfile(binding, policyQ, pcpProc, proxyFwd))
	}
	sys, err := dfi.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	swEnd, cpEnd := bufpipe.New()
	go func() { _ = sys.ServeSwitch(cpEnd) }()
	bench, err := cbench.New(swEnd, cbench.Config{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	if err := bench.WaitReady(5 * time.Second); err != nil {
		b.Fatal(err)
	}
	return sys, bench
}

// BenchmarkTable1_Latency reproduces Table I's flow-start latency under no
// load (paper: 5.73 ms ± 3.39 ms on the calibrated profile).
func BenchmarkTable1_Latency(b *testing.B) {
	for _, calibrated := range []bool{true, false} {
		name := "native"
		if calibrated {
			name = "calibrated"
		}
		b.Run(name, func(b *testing.B) {
			_, bench := newBenchSystem(b, calibrated, 512, 8)
			b.ResetTimer()
			stats, err := bench.Latency(b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(stats.Mean())/1e6, "ms/flow")
			b.ReportMetric(float64(stats.StdDev())/1e6, "ms/σ")
		})
	}
}

// BenchmarkTable1_Throughput reproduces Table I's saturation throughput
// (paper: 1350 ± 39 flows/sec on the calibrated profile).
func BenchmarkTable1_Throughput(b *testing.B) {
	for _, calibrated := range []bool{true, false} {
		name := "native"
		if calibrated {
			name = "calibrated"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, bench := newBenchSystem(b, calibrated, 512, 8)
				b.StartTimer()
				rate, err := bench.Throughput(time.Second, 5000)
				if err != nil {
					b.Fatal(err)
				}
				total += rate
			}
			b.ReportMetric(total/float64(b.N), "flows/sec")
		})
	}
}

// BenchmarkTable2_Breakdown reproduces Table II's per-stage latency
// breakdown (paper: binding 2.41 ms, policy 2.52 ms, other PCP 0.39 ms,
// proxy 0.16 ms).
func BenchmarkTable2_Breakdown(b *testing.B) {
	sys, bench := newBenchSystem(b, true, 512, 8)
	b.ResetTimer()
	if _, err := bench.Latency(b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	m := sys.PCP().Metrics()
	b.ReportMetric(float64(m.BindingQuery.Mean())/1e6, "ms/binding")
	b.ReportMetric(float64(m.PolicyQuery.Mean())/1e6, "ms/policy")
	b.ReportMetric(float64(m.OtherPCP.Mean())/1e6, "ms/otherPCP")
	b.ReportMetric(float64(sys.Proxy().Overhead().Mean())/1e6, "ms/proxy")
}

// BenchmarkFig4_TTFB reproduces Figure 4: TTFB for new flows vs background
// flow arrival rate, with and without DFI (paper: flat 4–6 ms without DFI;
// ≈22 ms at idle rising to ≈86 ms at 700 flows/sec with DFI, plateauing
// near 200 ms past saturation).
func BenchmarkFig4_TTFB(b *testing.B) {
	for _, rate := range []int{0, 400, 800, 1000} {
		b.Run(fmt.Sprintf("rate=%d", rate), func(b *testing.B) {
			res, err := experiments.RunFig4(experiments.Fig4Config{
				Rates:      []int{rate},
				Samples:    10,
				Calibrated: true,
				Seed:       42,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.WithDFI[0].TTFB.Mean)/1e6, "ms/withDFI")
			b.ReportMetric(float64(res.WithoutDFI[0].TTFB.Mean)/1e6, "ms/withoutDFI")
		})
	}
}

// BenchmarkFig5a_Worm reproduces Figure 5a: infections from the NotPetya
// surrogate under each policy condition with a 09:00 foothold (paper:
// Baseline all 92 in ~2 min; S-RBAC all in ~25 min; AT-RBAC incomplete and
// slowest).
func BenchmarkFig5a_Worm(b *testing.B) {
	for _, cond := range []testbed.Condition{
		testbed.ConditionBaseline, testbed.ConditionSRBAC, testbed.ConditionATRBAC,
	} {
		b.Run(cond.String(), func(b *testing.B) {
			var infected, firstMs float64
			for i := 0; i < b.N; i++ {
				tb, err := testbed.New(testbed.Config{Condition: cond, Seed: 3})
				if err != nil {
					b.Fatal(err)
				}
				res, err := tb.RunInfection(tb.FootholdHost(9*time.Hour), 9*time.Hour, 20*time.Hour)
				if err != nil {
					b.Fatal(err)
				}
				infected += float64(len(res.Infections))
				if first, ok := res.FirstSpread(); ok {
					firstMs += float64(first) / 1e6
				}
			}
			b.ReportMetric(infected/float64(b.N), "infected")
			b.ReportMetric(firstMs/float64(b.N)/1e3, "s/first-spread")
		})
	}
}

// BenchmarkFig5b_FootholdHour reproduces Figure 5b: AT-RBAC infections by
// foothold hour (paper: near-total during business hours, collapsing to an
// isolated foothold off-hours).
func BenchmarkFig5b_FootholdHour(b *testing.B) {
	for _, hour := range []int{3, 9, 13, 21} {
		b.Run(fmt.Sprintf("hour=%02d", hour), func(b *testing.B) {
			var infected float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFig5b(experiments.Fig5bConfig{
					Seed:  3,
					Hours: []int{hour},
				})
				if err != nil {
					b.Fatal(err)
				}
				infected += float64(res.Points[0].Infected)
			}
			b.ReportMetric(infected/float64(b.N), "infected")
		})
	}
}

// BenchmarkAblation_ParallelPCP measures saturation throughput as PCP
// workers scale — the paper's suggested path to higher loads ("multiple
// DFI Proxy and PCP instances").
func BenchmarkAblation_ParallelPCP(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, bench := newBenchSystem(b, true, 512, workers)
				b.StartTimer()
				rate, err := bench.Throughput(time.Second, 8000)
				if err != nil {
					b.Fatal(err)
				}
				total += rate
			}
			b.ReportMetric(total/float64(b.N), "flows/sec")
		})
	}
}

// BenchmarkAblation_HardTimeouts quantifies the paper's §III-A argument
// against hard timeouts for consistency: a long-running flow under a hard
// timeout keeps re-entering the control plane, while DFI's cookie-scoped
// flush leaves it untouched until policy actually changes.
func BenchmarkAblation_HardTimeouts(b *testing.B) {
	run := func(b *testing.B, hardTimeout uint16) float64 {
		// Simulated long-running flow: 120 virtual seconds of steady
		// packets against a rule with or without a hard timeout.
		clk := newVirtualClock()
		sw := switchsim.NewSwitch(switchsim.Config{DPID: 1, Clock: clk})
		if err := sw.AttachPort(2, func([]byte) {}); err != nil {
			b.Fatal(err)
		}
		installAllow(b, sw, hardTimeout)
		frame := benchFrame()
		reEntries := 0
		for sec := 0; sec < 120; sec++ {
			clk.advance(time.Second)
			sw.SweepTimeouts()
			outcome, _ := sw.Evaluate(1, frame)
			if outcome == switchsim.OutcomeForward {
				continue
			}
			// Control-plane re-entry: reinstall, as the controller would.
			reEntries++
			installAllow(b, sw, hardTimeout)
		}
		return float64(reEntries)
	}
	b.Run("hard-timeout-30s", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			total += run(b, 30)
		}
		b.ReportMetric(total/float64(b.N), "re-entries/2min-flow")
	})
	b.Run("cookie-flush", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			total += run(b, 0)
		}
		b.ReportMetric(total/float64(b.N), "re-entries/2min-flow")
	})
}

// BenchmarkAblation_ResolveAtDecision measures the cost of DFI's choice to
// resolve identifiers at decision time (always-current bindings) against a
// hypothetical insert-time precompilation (stale on any binding change):
// the per-flow price of correctness.
func BenchmarkAblation_ResolveAtDecision(b *testing.B) {
	sys, err := dfi.New(dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
		a, c := bufpipe.New()
		ctl := controller.New(controller.Config{})
		go func() { _ = ctl.Serve(c) }()
		return a, nil
	}))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	erm := sys.Entity()
	mac := netpkt.MustParseMAC("02:00:00:00:00:01")
	ip := netpkt.MustParseIPv4("10.0.0.1")
	erm.BindIPMAC(ip, mac)
	erm.BindHostIP("h1", ip)
	erm.BindUserHost("alice", "h1")

	b.Run("decision-time", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := erm.Resolve(dfi.Observed{MAC: mac, HasIP: true, IP: ip}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insert-time-precompiled", func(b *testing.B) {
		// The stale alternative: a frozen map captured at insert.
		precompiled := map[dfi.IPv4]string{ip: "h1"}
		for i := 0; i < b.N; i++ {
			_ = precompiled[ip]
		}
	})
}

// --- small helpers for the ablations ---

type virtualClock struct {
	now time.Time
}

func newVirtualClock() *virtualClock {
	return &virtualClock{now: time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)}
}

func (c *virtualClock) Now() time.Time          { return c.now }
func (c *virtualClock) Sleep(d time.Duration)   { c.now = c.now.Add(d) }
func (c *virtualClock) advance(d time.Duration) { c.now = c.now.Add(d) }

func installAllow(b *testing.B, sw interface {
	ApplyFlowMod(*openflow.FlowMod) error
}, hardTimeout uint16) {
	b.Helper()
	err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModAdd, Priority: 100,
		HardTimeout: hardTimeout,
		BufferID:    openflow.NoBuffer,
		Match:       &openflow.Match{},
		Instructions: []openflow.Instruction{
			&openflow.InstructionApplyActions{
				Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
			},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
}

func benchFrame() []byte {
	return netpkt.BuildTCP(
		netpkt.MustParseMAC("02:00:00:00:00:01"), netpkt.MustParseMAC("02:00:00:00:00:02"),
		netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseIPv4("10.0.0.2"),
		&netpkt.TCPSegment{SrcPort: 1000, DstPort: 80},
	)
}

// BenchmarkAblation_WildcardCache measures the control-plane load saved by
// the CAB-ACME-style widened-rule extension: many flows between one host
// pair under a MAC-pair policy cost one packet-in with caching on, versus
// one per flow with exact rules.
func BenchmarkAblation_WildcardCache(b *testing.B) {
	run := func(b *testing.B, widen bool) {
		for i := 0; i < b.N; i++ {
			opts := []dfi.Option{
				dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
					a, c := bufpipe.New()
					ctl := controller.New(controller.Config{})
					go func() { _ = ctl.Serve(c) }()
					return a, nil
				}),
			}
			if widen {
				opts = append(opts, dfi.WithWildcardCaching())
			}
			sys, err := dfi.New(opts...)
			if err != nil {
				b.Fatal(err)
			}
			macA := netpkt.MustParseMAC("02:00:00:00:00:01")
			macB := netpkt.MustParseMAC("02:00:00:00:00:02")
			if err := sys.Policy().RegisterPDP("p", 50); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Policy().Insert(dfi.Rule{
				PDP: "p", Action: dfi.ActionAllow,
				Src: dfi.EndpointSpec{MAC: dfi.MACOf(macA)},
				Dst: dfi.EndpointSpec{MAC: dfi.MACOf(macB)},
			}); err != nil {
				b.Fatal(err)
			}

			sw := switchsim.NewSwitch(switchsim.Config{DPID: 1})
			swEnd, dfiEnd := bufpipe.New()
			go func() { _ = sw.ServeControl(swEnd) }()
			go func() { _ = sys.ServeSwitch(dfiEnd) }()
			if !sw.WaitConfigured(5 * time.Second) {
				b.Fatal("switch never configured")
			}
			if err := sw.AttachPort(1, func([]byte) {}); err != nil {
				b.Fatal(err)
			}
			if err := sw.AttachPort(2, func([]byte) {}); err != nil {
				b.Fatal(err)
			}

			// Prime with the first flow and wait for its rule to land,
			// then measure the control-plane cost of 99 sibling flows.
			const flows = 100
			mkFrame := func(f int) []byte {
				return netpkt.BuildTCP(macA, macB,
					netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseIPv4("10.0.0.2"),
					&netpkt.TCPSegment{SrcPort: uint16(30000 + f), DstPort: 80, Flags: netpkt.TCPSyn})
			}
			sw.Inject(1, mkFrame(0))
			deadline := time.Now().Add(5 * time.Second)
			for sw.FlowCount(0) == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			for f := 1; f < flows; f++ {
				sw.Inject(1, mkFrame(f))
			}
			deadline = time.Now().Add(5 * time.Second)
			want := uint64(flows)
			if widen {
				want = 1
			}
			for sys.PCP().Metrics().Processed() < want && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			time.Sleep(20 * time.Millisecond)
			b.ReportMetric(float64(sys.PCP().Metrics().Processed()), "admissions/100flows")
			sys.Close()
		}
	}
	b.Run("exact-rules", func(b *testing.B) { run(b, false) })
	b.Run("wildcard-cache", func(b *testing.B) { run(b, true) })
}

// --- admission fast-path microbenchmarks ---

// policyBenchManager builds a Manager holding n rules with the field mix a
// real deployment shows: IP-pinned, MAC-pinned, user/host-scoped and
// port-only (residual) rules spread across three PDP priorities.
func policyBenchManager(tb testing.TB, n int) *policy.Manager {
	tb.Helper()
	pm := policy.NewManager()
	for i, prio := range []int{10, 20, 30} {
		if err := pm.RegisterPDP(fmt.Sprintf("pdp%d", i), prio); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		r := policy.Rule{PDP: fmt.Sprintf("pdp%d", i%3)}
		if i%2 == 0 {
			r.Action = policy.ActionAllow
		} else {
			r.Action = policy.ActionDeny
		}
		switch i % 6 {
		case 0:
			ip := netpkt.IPv4FromUint32(0x0a010000 + uint32(i))
			r.Src.IP = &ip
		case 1:
			ip := netpkt.IPv4FromUint32(0x0a020000 + uint32(i))
			r.Dst.IP = &ip
		case 2:
			mac := netpkt.MAC{0x02, 0x10, byte(i >> 16), byte(i >> 8), byte(i), 0x01}
			r.Src.MAC = &mac
		case 3:
			r.Src.User = fmt.Sprintf("user%d", i)
		case 4:
			r.Dst.Host = fmt.Sprintf("host%d", i)
		case 5:
			port := uint16(1024 + i%40000)
			r.Src.Port = &port
		}
		if _, err := pm.Insert(r); err != nil {
			tb.Fatal(err)
		}
	}
	return pm
}

// policyBenchFlows returns the query mix: a flow hitting an IP-indexed
// rule, one hitting a user-scoped rule, and one matching nothing (the
// default-deny worst case, which a linear scan pays in full).
func policyBenchFlows(n int) []*policy.FlowView {
	hit := &policy.FlowView{
		EtherType: netpkt.EtherTypeIPv4, HasIPProto: true, IPProto: netpkt.ProtoTCP,
		Src: policy.EndpointAttrs{
			HasIP: true, IP: netpkt.IPv4FromUint32(0x0a010000), // rule 0's Src.IP
			MAC: netpkt.MAC{0x02, 0xaa, 0, 0, 0, 1}, HasPort: true, Port: 40000,
		},
		Dst: policy.EndpointAttrs{
			HasIP: true, IP: netpkt.IPv4FromUint32(0x0afe0001),
			MAC: netpkt.MAC{0x02, 0xaa, 0, 0, 0, 2}, HasPort: true, Port: 80,
		},
	}
	userHit := &policy.FlowView{
		EtherType: netpkt.EtherTypeIPv4, HasIPProto: true, IPProto: netpkt.ProtoTCP,
		Src: policy.EndpointAttrs{
			Users: []string{"user3"}, Host: "h-user3",
			HasIP: true, IP: netpkt.IPv4FromUint32(0x0ac80001),
			MAC: netpkt.MAC{0x02, 0xbb, 0, 0, 0, 1},
		},
		Dst: policy.EndpointAttrs{
			HasIP: true, IP: netpkt.IPv4FromUint32(0x0ac80002),
			MAC: netpkt.MAC{0x02, 0xbb, 0, 0, 0, 2},
		},
	}
	if n < 4 {
		// user3 only exists with ≥4 rules; fall back to the miss flow.
		userHit = hit
	}
	miss := &policy.FlowView{
		EtherType: netpkt.EtherTypeIPv4, HasIPProto: true, IPProto: netpkt.ProtoUDP,
		Src: policy.EndpointAttrs{
			HasIP: true, IP: netpkt.IPv4FromUint32(0x0afd0001),
			MAC: netpkt.MAC{0x02, 0xcc, 0, 0, 0, 1}, HasPort: true, Port: 53,
		},
		Dst: policy.EndpointAttrs{
			HasIP: true, IP: netpkt.IPv4FromUint32(0x0afd0002),
			MAC: netpkt.MAC{0x02, 0xcc, 0, 0, 0, 2}, HasPort: true, Port: 53,
		},
	}
	return []*policy.FlowView{hit, userHit, miss}
}

func benchmarkPolicyQuery(b *testing.B, n int) {
	pm := policyBenchManager(b, n)
	flows := policyBenchFlows(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm.Query(flows[i%len(flows)])
	}
}

func BenchmarkPolicyQuery_10Rules(b *testing.B)  { benchmarkPolicyQuery(b, 10) }
func BenchmarkPolicyQuery_100Rules(b *testing.B) { benchmarkPolicyQuery(b, 100) }
func BenchmarkPolicyQuery_1kRules(b *testing.B)  { benchmarkPolicyQuery(b, 1000) }
func BenchmarkPolicyQuery_10kRules(b *testing.B) { benchmarkPolicyQuery(b, 10000) }

// nopSwitch discards installed flow rules.
type nopSwitch struct{}

func (nopSwitch) WriteFlowMod(*openflow.FlowMod) error { return nil }

// BenchmarkPCP_AdmissionHotPath measures one full admission through
// pcp.Process against a 1k-rule policy: "cold" runs the complete
// parse → MAC-sensor → binding query → policy query → compile path every
// time (flow-decision cache disabled); "cache-hit" re-admits the same flow
// and is served by the epoch-validated decision cache.
func BenchmarkPCP_AdmissionHotPath(b *testing.B) {
	run := func(b *testing.B, cacheSize int) {
		pm := policyBenchManager(b, 1000)
		erm := entity.NewManager()
		erm.BindIPMAC(netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseMAC("02:00:00:00:00:01"))
		erm.BindHostIP("h1", netpkt.MustParseIPv4("10.0.0.1"))
		erm.BindUserHost("alice", "h1")
		p := pcp.New(pcp.Config{Entity: erm, Policy: pm, FlowCacheSize: cacheSize})
		p.AttachSwitch(1, nopSwitch{})
		frame := benchFrame()
		req := &pcp.Request{DPID: 1, PacketIn: &openflow.PacketIn{
			BufferID: openflow.NoBuffer,
			Reason:   openflow.PacketInReasonNoMatch,
			Match:    &openflow.Match{InPort: openflow.U32(3)},
			Data:     frame,
		}}
		p.Process(req) // prime
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Process(req)
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, -1) })
	b.Run("cache-hit", func(b *testing.B) { run(b, 0) })
}

// BenchmarkExtension_IncidentResponse quantifies the paper's closing claim
// (§V-B): AT-RBAC's slowdown buys an incident-response team enough time to
// contain the outbreak — a 5-minute quarantine-after-detection leaves the
// fast conditions fully infected but collapses AT-RBAC's final count.
func BenchmarkExtension_IncidentResponse(b *testing.B) {
	for _, cond := range []testbed.Condition{
		testbed.ConditionBaseline, testbed.ConditionSRBAC, testbed.ConditionATRBAC,
	} {
		b.Run(cond.String(), func(b *testing.B) {
			var infected float64
			for i := 0; i < b.N; i++ {
				tb, err := testbed.New(testbed.Config{
					Condition:       cond,
					Seed:            3,
					QuarantineDelay: 5 * time.Minute,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := tb.RunInfection(tb.FootholdHost(9*time.Hour), 9*time.Hour, 17*time.Hour)
				if err != nil {
					b.Fatal(err)
				}
				infected += float64(len(res.Infections))
			}
			b.ReportMetric(infected/float64(b.N), "infected-with-5m-IR")
		})
	}
}
