module github.com/dfi-sdn/dfi

go 1.22
