package dfi_test

import (
	"testing"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

// TestAdmissionHotPathZeroAlloc is the CI gate behind the 0 B/op claim of
// BenchmarkPCP_AdmissionHotPath/cache-hit: with metrics enabled (the PCP
// always carries a live registry), a trace ring and span store attached
// but sampling disabled (every=0), a cache-hit re-admission must not
// allocate. Tracing compiled in and sampled out must cost nothing.
func TestAdmissionHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	pm := policyBenchManager(t, 1000)
	erm := entity.NewManager()
	erm.BindIPMAC(netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseMAC("02:00:00:00:00:01"))
	erm.BindHostIP("h1", netpkt.MustParseIPv4("10.0.0.1"))
	erm.BindUserHost("alice", "h1")
	p := pcp.New(pcp.Config{
		Entity: erm,
		Policy: pm,
		Trace:  obs.NewTraceRing(8, 0),
		Spans:  obs.NewSpanStore(64, nil),
	})
	p.AttachSwitch(1, nopSwitch{})
	req := &pcp.Request{DPID: 1, PacketIn: &openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		Reason:   openflow.PacketInReasonNoMatch,
		Match:    &openflow.Match{InPort: openflow.U32(3)},
		Data:     benchFrame(),
	}}
	p.Process(req) // prime the decision cache

	if allocs := testing.AllocsPerRun(200, func() { p.Process(req) }); allocs != 0 {
		t.Fatalf("cache-hit admission allocates %.1f objects/op, want 0", allocs)
	}
}
