package dfi_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/core/policy/classifier"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/policytext/compile"
)

// TestAdmissionHotPathZeroAlloc is the CI gate behind the 0 B/op claim of
// BenchmarkPCP_AdmissionHotPath/cache-hit: with metrics enabled (the PCP
// always carries a live registry), a trace ring and span store attached
// but sampling disabled (every=0), a cache-hit re-admission must not
// allocate. Tracing compiled in and sampled out must cost nothing.
func TestAdmissionHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	pm := policyBenchManager(t, 1000)
	erm := entity.NewManager()
	erm.BindIPMAC(netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseMAC("02:00:00:00:00:01"))
	erm.BindHostIP("h1", netpkt.MustParseIPv4("10.0.0.1"))
	erm.BindUserHost("alice", "h1")
	p := pcp.New(pcp.Config{
		Entity: erm,
		Policy: pm,
		Trace:  obs.NewTraceRing(8, 0),
		Spans:  obs.NewSpanStore(64, nil),
	})
	p.AttachSwitch(1, nopSwitch{})
	req := &pcp.Request{DPID: 1, PacketIn: &openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		Reason:   openflow.PacketInReasonNoMatch,
		Match:    &openflow.Match{InPort: openflow.U32(3)},
		Data:     benchFrame(),
	}}
	p.Process(req) // prime the decision cache

	if allocs := testing.AllocsPerRun(200, func() { p.Process(req) }); allocs != 0 {
		t.Fatalf("cache-hit admission allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWireEncodeZeroAlloc gates the append-style OpenFlow encoder: a
// steady-state flow-mod encode into a reused buffer (the shape Conn.Send
// and the PCP install path run) must not allocate.
func TestWireEncodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	fm := &openflow.FlowMod{
		Cookie:   0xd0f1,
		TableID:  0,
		Command:  openflow.FlowModAdd,
		Priority: 500,
		BufferID: openflow.NoBuffer,
		Match: &openflow.Match{
			InPort:  openflow.U32(3),
			EthType: openflow.U16(0x0800),
			IPProto: openflow.U8(6),
			TCPDst:  openflow.U16(445),
		},
		Instructions: []openflow.Instruction{
			&openflow.InstructionGotoTable{TableID: 1},
		},
	}
	buf := make([]byte, 0, 512)
	if allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = openflow.AppendMessage(buf[:0], 7, fm)
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("flow-mod encode allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRelayForwardZeroAlloc gates the proxy relay's forward primitive:
// read a frame from the stream, shift its table space in place, queue it
// on the peer's coalescing buffer, flush. After priming (pool and buffer
// warm-up), the loop must not allocate — this is the path every relayed
// flow-mod takes through the DFI proxy.
func TestRelayForwardZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	fm := &openflow.FlowMod{
		TableID:  0,
		Command:  openflow.FlowModAdd,
		BufferID: openflow.NoBuffer,
		Match:    &openflow.Match{InPort: openflow.U32(1)},
		Instructions: []openflow.Instruction{
			&openflow.InstructionGotoTable{TableID: 1},
		},
	}
	wire, err := openflow.Encode(1, fm)
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(wire)
	c := openflow.NewConn(nopStream{})
	var f openflow.Frame
	forward := func() {
		r.Reset(wire)
		if err := openflow.ReadFrame(r, &f); err != nil {
			t.Fatal(err)
		}
		if !f.ShiftFlowModTables(+1) {
			t.Fatal("shift refused")
		}
		if err := c.QueueFrame(&f); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	forward() // prime frame buffer and write buffer
	if allocs := testing.AllocsPerRun(200, forward); allocs != 0 {
		t.Fatalf("relay forward allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEvloopForwardZeroAlloc gates the event-loop relay's forward
// primitive: the same frame as TestRelayForwardZeroAlloc, but through the
// state-machine path the epoll workers run — accumulator feed over a raw
// read chunk, in-place table shift, queue on the write-only peer conn,
// coalesced flush. Attaching the event loop must not cost the relay its
// 0 B/op steady state.
func TestEvloopForwardZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	fm := &openflow.FlowMod{
		TableID:  0,
		Command:  openflow.FlowModAdd,
		BufferID: openflow.NoBuffer,
		Match:    &openflow.Match{InPort: openflow.U32(1)},
		Instructions: []openflow.Instruction{
			&openflow.InstructionGotoTable{TableID: 1},
		},
	}
	wire, err := openflow.Encode(1, fm)
	if err != nil {
		t.Fatal(err)
	}
	peer := openflow.NewWriterConn(nopStream{})
	var acc openflow.Accumulator
	emit := func(f *openflow.Frame) error {
		if !f.ShiftFlowModTables(+1) {
			t.Fatal("shift refused")
		}
		return peer.QueueFrame(f)
	}
	chunk := make([]byte, len(wire))
	forward := func() {
		copy(chunk, wire) // undo the in-place shift, as a fresh read would
		if err := acc.Feed(chunk, emit); err != nil {
			t.Fatal(err)
		}
		if err := peer.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	forward() // prime the write buffer
	if allocs := testing.AllocsPerRun(200, forward); allocs != 0 {
		t.Fatalf("event-loop relay forward allocates %.1f objects/op, want 0", allocs)
	}
}

// nopStream swallows writes and never yields reads (alloc-gate sink).
type nopStream struct{}

func (nopStream) Write(p []byte) (int, error) { return len(p), nil }
func (nopStream) Read([]byte) (int, error)    { return 0, io.EOF }

// TestCompiledLookupZeroAlloc gates the delta-compiler's admission lookup:
// a tuple-space probe over a 1000-rule compiled classifier — hit, user-hit,
// and default-deny miss alike — must not allocate. This is the //dfi:hotpath
// contract behind the queryPolicy fast path.
func TestCompiledLookupZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	pm := policyBenchManager(t, 1000)
	c := classifier.Compile(pm.Snapshot())
	flows := policyBenchFlows(1000)
	for _, f := range flows {
		c.Lookup(f) // prime
	}
	if allocs := testing.AllocsPerRun(200, func() {
		for _, f := range flows {
			c.Lookup(f)
		}
	}); allocs != 0 {
		t.Fatalf("compiled lookup allocates %.1f objects/op, want 0", allocs)
	}
}

// TestAdmissionZeroAllocWithLanguagePolicy re-runs the cache-hit zero-alloc
// gate with the 1000-rule policy produced by the policytext compiler
// instead of hand-inserted rules: lowering through groups must yield plain
// manager rules whose admission path stays 0 B/op.
func TestAdmissionZeroAllocWithLanguagePolicy(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	pm := policy.NewManager()
	eng := compile.NewEngine(pm, nil)
	var src bytes.Buffer
	src.WriteString("group quarantined {\n")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&src, "  host q%d\n", i)
	}
	src.WriteString("}\n\npdp lang priority 30\ndeny from group quarantined\nallow from user alice\n")
	if _, err := eng.SetSource(src.String()); err != nil {
		t.Fatal(err)
	}
	if pm.Len() != 1001 {
		t.Fatalf("compiled policy has %d rules", pm.Len())
	}
	erm := entity.NewManager()
	erm.BindIPMAC(netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseMAC("02:00:00:00:00:01"))
	erm.BindHostIP("h1", netpkt.MustParseIPv4("10.0.0.1"))
	erm.BindUserHost("alice", "h1")
	p := pcp.New(pcp.Config{
		Entity: erm,
		Policy: pm,
		Trace:  obs.NewTraceRing(8, 0),
		Spans:  obs.NewSpanStore(64, nil),
	})
	p.AttachSwitch(1, nopSwitch{})
	req := &pcp.Request{DPID: 1, PacketIn: &openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		Reason:   openflow.PacketInReasonNoMatch,
		Match:    &openflow.Match{InPort: openflow.U32(3)},
		Data:     benchFrame(),
	}}
	p.Process(req) // prime the decision cache

	if allocs := testing.AllocsPerRun(200, func() { p.Process(req) }); allocs != 0 {
		t.Fatalf("cache-hit admission over language-compiled policy allocates %.1f objects/op, want 0", allocs)
	}
}
