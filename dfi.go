// Package dfi is Dynamic Flow Isolation: controller-oblivious, dynamic,
// fine-grained network access control for OpenFlow 1.3 SDNs, reproducing
// Gomez et al., "Controller-Oblivious Dynamic Access Control in
// Software-Defined Networks" (DSN 2019).
//
// A System assembles DFI's control plane — the DFI Proxy, Policy
// Compilation Point, Policy Manager, Entity Resolution Manager and an event
// bus for sensors and PDPs — in front of an unmodified SDN controller.
// Each OpenFlow switch connection is handed to ServeSwitch; the proxy
// reserves flow table 0 of every switch for DFI's access-control rules,
// evaluates each new flow against the current policy before the controller
// ever sees it, and keeps cached rules consistent with policy changes via
// cookie-scoped flushes.
//
// Minimal use:
//
//	sys, err := dfi.New(dfi.WithControllerDialer(dial))
//	...
//	go sys.ServeSwitch(switchConn) // one per switch
//
// Policies come from PDPs: register one of the provided PDPs (AllowAll,
// SRBAC, ATRBAC, Quarantine) or emit rules directly through
// sys.Policy().
package dfi

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/dfi-sdn/dfi/internal/bus"
	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/core/proxy"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/obs/slo"
	"github.com/dfi-sdn/dfi/internal/policytext/compile"
	"github.com/dfi-sdn/dfi/internal/policytext/compile/verify"
	"github.com/dfi-sdn/dfi/internal/sensors"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

// config collects the options for New.
type config struct {
	dial          func() (io.ReadWriteCloser, error)
	clock         simclock.Clock
	bindingLat    store.LatencyModel
	policyLat     store.LatencyModel
	pcpLat        store.LatencyModel
	proxyLat      store.LatencyModel
	queueDepth    int
	workers       int
	rulePriority  uint16
	allowIdleSec  uint16
	denyIdleSec   uint16
	externalBus   *bus.Bus
	wildcardCache bool
	deltaCompile  bool
	proactivePush bool
	proactiveMax  int
	flowCacheSize int
	flushFanOut   int
	statsTimeout  time.Duration
	evloopWorkers int
	metrics       *obs.Registry
	traceCap      int
	traceEvery    int
	traceSet      bool
	spanCap       int
	auditPath     string
	auditMaxBytes int64
	policySource  string
	policySet     bool
	sloEnabled    bool
	sloInterval   time.Duration
	sloObjectives []slo.Objective
}

// Option configures a System.
type Option func(*config)

// WithControllerDialer sets how the proxy reaches the SDN controller: the
// dialer is invoked once per switch connection. Required.
func WithControllerDialer(dial func() (io.ReadWriteCloser, error)) Option {
	return func(c *config) { c.dial = dial }
}

// WithClock sets the clock used for rule timeouts and latency charging
// (default: wall clock). The security-evaluation testbed passes a simulated
// clock here.
func WithClock(clock simclock.Clock) Option {
	return func(c *config) { c.clock = clock }
}

// WithLatencyProfile injects per-stage control-plane costs: the binding
// query, policy query, residual PCP processing and proxy forwarding. Nil
// models are free. Used to calibrate benchmarks against the paper's
// measured MySQL/RabbitMQ deployment (Table II).
func WithLatencyProfile(binding, policyQuery, pcpProcessing, proxyForward store.LatencyModel) Option {
	return func(c *config) {
		c.bindingLat = binding
		c.policyLat = policyQuery
		c.pcpLat = pcpProcessing
		c.proxyLat = proxyForward
	}
}

// PaperLatencyProfile returns the Gaussian per-stage costs the paper
// measured on its testbed (Table II): binding query 2.41±0.97 ms, policy
// query 2.52±0.85 ms, other PCP processing 0.39±0.27 ms, proxy
// 0.16±0.10 ms. Use with WithLatencyProfile to regenerate Tables I–II and
// Figure 4.
func PaperLatencyProfile(seed int64) (binding, policyQuery, pcpProcessing, proxyForward LatencyModel) {
	return store.NewGaussian(2410*time.Microsecond, 970*time.Microsecond, seed),
		store.NewGaussian(2520*time.Microsecond, 850*time.Microsecond, seed+1),
		store.NewGaussian(390*time.Microsecond, 270*time.Microsecond, seed+2),
		store.NewGaussian(160*time.Microsecond, 100*time.Microsecond, seed+3)
}

// WithAdmissionQueue bounds the PCP's pending-flow queue and worker pool
// (defaults 512 and 8). The queue bound produces the saturation behaviour
// the paper measures above ~800 flows/sec.
func WithAdmissionQueue(depth, workers int) Option {
	return func(c *config) {
		c.queueDepth = depth
		c.workers = workers
	}
}

// WithRuleTimeouts sets the idle timeouts (seconds) on installed allow and
// deny rules (defaults 300 and 30).
func WithRuleTimeouts(allowSec, denySec uint16) Option {
	return func(c *config) {
		c.allowIdleSec = allowSec
		c.denyIdleSec = denySec
	}
}

// WithWildcardCaching enables the CAB-ACME-style extension the paper
// names as future work (§III-B): the PCP installs provably-safe widened
// flow rules instead of exact matches when no other policy rule — present
// or identifier-dependent — could decide any covered packet differently,
// reducing control-plane load for flow-dense host pairs.
func WithWildcardCaching() Option {
	return func(c *config) { c.wildcardCache = true }
}

// WithDeltaCompilation enables the incremental policy delta-compiler: the
// PCP compiles each policy epoch into a tuple-space classifier, serves
// admission queries from it, and on every mutation emits only the flow
// mods the epoch-to-epoch rule delta requires — O(changed rules) per
// mutation instead of the legacy cookie-scoped delete list — over the
// batched flush fan-out.
func WithDeltaCompilation() Option {
	return func(c *config) { c.deltaCompile = true }
}

// WithProactivePush additionally installs exact-match table-0 allow rules
// ahead of traffic, at rule-insert and binding-change time, for entities
// whose identifier chains are fully bound — so steady-state traffic on
// those flows forwards with zero packet-ins. maxFlowsPerRule caps how many
// entries one rule may expand into (0 selects the default, 128). Implies
// delta compilation.
func WithProactivePush(maxFlowsPerRule int) Option {
	return func(c *config) {
		c.proactivePush = true
		c.proactiveMax = maxFlowsPerRule
	}
}

// WithFlowDecisionCache sizes the PCP's flow-decision cache: the LRU that
// lets a re-admitted flow skip the binding and policy queries while both
// the policy epoch and the identifier-binding epoch are unchanged, so a
// cached decision can never outlive a revocation or a binding change.
// 0 selects the default (4096 entries); negative disables the cache.
func WithFlowDecisionCache(size int) Option {
	return func(c *config) { c.flowCacheSize = size }
}

// WithFlushFanOut bounds how many switches a cookie-scoped policy flush
// writes to concurrently (default 8). Flushes compile their flow-mods once
// and fan the per-switch batched writes out on a bounded worker group, so
// flush latency stays roughly flat in switch count instead of growing
// linearly; 1 serializes the writes. The flush remains synchronous either
// way: revocation returns only after every switch was written.
func WithFlushFanOut(workers int) Option {
	return func(c *config) { c.flushFanOut = workers }
}

// WithFlowStatsTimeout bounds how long a DFI-originated flow-stats read
// (e.g. the quarantine PDP polling switch counters) waits for the
// switch's multipart reply (default 10s).
func WithFlowStatsTimeout(d time.Duration) Option {
	return func(c *config) { c.statsTimeout = d }
}

// WithEventLoop relays switch connections on a pool of that many
// event-loop workers instead of two blocking goroutines per switch:
// readiness-driven non-blocking reads feed per-connection frame state
// machines, so goroutine count stays O(workers) at 10k-connection scale.
// workers <= 0 selects the engine default. Streams that are not
// socket-backed (in-memory pipes) and non-linux platforms transparently
// fall back to one pump goroutine per connection with identical relay
// semantics. Default off.
func WithEventLoop(workers int) Option {
	return func(c *config) {
		if workers <= 0 {
			workers = proxy.DefaultEventLoopWorkers
		}
		c.evloopWorkers = workers
	}
}

// WithPolicySource loads an initial policy document (the policytext
// language: groups, roles, temporal windows, templates) at assembly time.
// The source is compiled and applied atomically by the System's policy
// engine before New returns; parse or compile errors fail New. The
// document can later be fetched, diffed and replaced at runtime through
// PolicyEngine, the /v1/policy admin API or dfictl policy. Temporal
// windows are driven by the System clock when it implements
// simclock.Scheduler (simclock.Real and *simclock.Simulated both do);
// otherwise they fall back to wall-clock timers.
func WithPolicySource(src string) Option {
	return func(c *config) {
		c.policySource = src
		c.policySet = true
	}
}

// WithSLO attaches the service-level-objective engine: sliding-window
// objectives over the System's live instruments, evaluated periodically on
// the System clock and surfaced via GET /v1/slo and dfictl slo. With no
// objectives the engine installs the defaults — policy time-to-enforcement
// p99, admission-latency p99, packet-in rate and audit append failures.
// Evaluation reads atomic counters and histogram bucket snapshots only;
// the admission hot path is untouched.
func WithSLO(objectives ...slo.Objective) Option {
	return func(c *config) {
		c.sloEnabled = true
		c.sloObjectives = objectives
	}
}

// WithSLOInterval overrides the periodic evaluation interval (default 10s;
// <=0 disables the ticker, leaving evaluation to /v1/slo reads).
func WithSLOInterval(d time.Duration) Option {
	return func(c *config) {
		c.sloEnabled = true
		c.sloInterval = d
	}
}

// DefaultSLOObjectives builds the stock objective set over reg's
// instruments: mutation time-to-enforcement p99 ≤ 100ms, admission total
// stage p99 ≤ 25ms, packet-in admission rate ≤ 10k/s (a flood signal) —
// each over a one-minute window — and zero audit append failures over five
// minutes (auditFailures may be nil when no audit log is configured).
func DefaultSLOObjectives(reg *obs.Registry, auditFailures func() uint64) []slo.Objective {
	// Lookups, not registrations: the Policy Manager and PCP own these
	// families and have already registered them by assembly time.
	tte := reg.FindHistogram("dfi_policy_mutation_tte_seconds")
	stages := reg.FindHistogramVec("dfi_pcp_stage_seconds")
	processed := reg.FindCounter("dfi_pcp_processed_total")
	if auditFailures == nil {
		auditFailures = func() uint64 { return 0 }
	}
	return []slo.Objective{
		slo.Quantile("tte-p99", "dfi_policy_mutation_tte_seconds",
			tte, 0.99, 100*time.Millisecond, time.Minute),
		slo.Quantile("admission-p99", `dfi_pcp_stage_seconds{stage="total"}`,
			stages.With("total"), 0.99, 25*time.Millisecond, time.Minute),
		slo.Rate("packetin-rate", "dfi_pcp_processed_total",
			processed.Value, 10000, time.Minute),
		slo.ZeroIncrease("audit-failures", "dfi_audit_append_failures_total",
			auditFailures, 5*time.Minute),
	}
}

// WithBus supplies an existing event bus instead of creating one.
func WithBus(b *bus.Bus) Option {
	return func(c *config) { c.externalBus = b }
}

// WithMetrics supplies the metrics registry every DFI component registers
// its instruments with, letting one registry aggregate several systems or
// share a process-wide scrape endpoint. Without this option the System
// creates a private registry, reachable via Metrics(). A registry must not
// be shared by two Systems: several gauges (PCP queue depth, worker pool)
// are bound to one System's components at registration time.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *config) { c.metrics = reg }
}

// WithAdmissionTracing configures the per-flow admission trace ring:
// capacity bounds how many completed traces are retained (0 selects 256)
// and every samples one admission in that many (1 traces everything;
// non-positive disables tracing, making its hot-path cost zero).
// The default is capacity 512, every 1.
func WithAdmissionTracing(capacity, every int) Option {
	return func(c *config) {
		c.traceCap = capacity
		c.traceEvery = every
		c.traceSet = true
	}
}

// WithCausalTracing sizes the causal span store: the ring retaining the
// spans that link a sensor event to its enforcement (bus publish →
// entity-binding update → policy mutation → flush compilation → proxy
// flow-mod writes) and a sampled admission to its stages. capacity 0
// selects the default (2048 spans); a negative capacity disables causal
// tracing entirely. Admission spans are gated by WithAdmissionTracing's
// sampling: an admission sampled out emits no spans and allocates
// nothing.
func WithCausalTracing(capacity int) Option {
	return func(c *config) {
		if capacity == 0 {
			capacity = 2048
		}
		c.spanCap = capacity
	}
}

// WithAuditLog enables the tamper-evident enforcement audit log: an
// append-only, hash-chained JSONL file at path recording every
// access-control decision and every policy/binding mutation. maxBytes
// bounds the active file (<=0 selects obs.DefaultAuditMaxBytes); on
// overflow it rotates to path+".1" with the hash chain continuing
// unbroken. Verify with dfictl audit verify or GET /v1/audit/verify.
func WithAuditLog(path string, maxBytes int64) Option {
	return func(c *config) {
		c.auditPath = path
		c.auditMaxBytes = maxBytes
	}
}

// System is an assembled DFI control plane.
type System struct {
	bus      *bus.Bus
	ownsBus  bool
	policy   *policy.Manager
	entity   *entity.Manager
	pcp      *pcp.PCP
	engine   *compile.Engine
	proxy    *proxy.Proxy
	metrics  *obs.Registry
	traces   *obs.TraceRing
	spans    *obs.SpanStore
	audit    *obs.AuditLog
	slo      *slo.Engine
	detachFn func()
}

// New assembles a DFI control plane.
func New(opts ...Option) (*System, error) {
	cfg := config{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.dial == nil {
		return nil, errors.New("dfi: WithControllerDialer is required")
	}
	if cfg.clock == nil {
		cfg.clock = simclock.Real{}
	}

	s := &System{}
	if cfg.externalBus != nil {
		s.bus = cfg.externalBus
	} else {
		s.bus = bus.New()
		s.ownsBus = true
	}
	if cfg.metrics != nil {
		s.metrics = cfg.metrics
	} else {
		s.metrics = obs.NewRegistry()
	}
	if !cfg.traceSet {
		cfg.traceCap, cfg.traceEvery = 512, 1
	}
	s.traces = obs.NewTraceRing(cfg.traceCap, cfg.traceEvery)
	if cfg.spanCap >= 0 {
		// Causal tracing is on by default (admission spans still respect
		// the trace ring's sampling); WithCausalTracing(-1) disables it.
		s.spans = obs.NewSpanStore(cfg.spanCap, cfg.clock)
		s.bus.SetTracer(s.spans)
	}
	if cfg.auditPath != "" {
		audit, err := obs.OpenAuditLog(cfg.auditPath, cfg.auditMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("dfi: %w", err)
		}
		s.audit = audit
	}
	s.metrics.CounterFunc("dfi_bus_published_total",
		"Events accepted by the sensor bus.", s.bus.Published)
	s.metrics.CounterFunc("dfi_bus_dropped_total",
		"Events discarded due to full subscriber queues.", s.bus.Dropped)
	s.registerObservability()

	s.policy = policy.NewManager(
		policy.WithQueryLatency(cfg.clock, cfg.policyLat),
		policy.WithObserver(s.metrics),
		policy.WithTracing(s.spans),
		policy.WithAuditLog(s.audit))
	s.entity = entity.NewManager(
		entity.WithQueryLatency(cfg.clock, cfg.bindingLat),
		entity.WithObserver(s.metrics),
		entity.WithAuditLog(s.audit))
	s.pcp = pcp.New(pcp.Config{
		Entity:              s.entity,
		Policy:              s.policy,
		Clock:               cfg.clock,
		ProcessingLatency:   cfg.pcpLat,
		QueueDepth:          cfg.queueDepth,
		Workers:             cfg.workers,
		RulePriority:        cfg.rulePriority,
		WildcardCaching:     cfg.wildcardCache,
		DeltaCompilation:    cfg.deltaCompile,
		ProactivePush:       cfg.proactivePush,
		ProactiveMaxFlows:   cfg.proactiveMax,
		AllowIdleTimeoutSec: cfg.allowIdleSec,
		DenyIdleTimeoutSec:  cfg.denyIdleSec,
		FlushFanOut:         cfg.flushFanOut,
		FlowCacheSize:       cfg.flowCacheSize,
		Obs:                 s.metrics,
		Trace:               s.traces,
		Spans:               s.spans,
		Audit:               s.audit,
	})

	// The policy engine compiles the high-level policy language down to
	// manager rules; it hangs off the same manager the PCP flushes from, so
	// engine deltas ride the compiled flush path. Created unconditionally:
	// the /v1/policy API is available even without an initial source.
	sched, ok := cfg.clock.(simclock.Scheduler)
	if !ok {
		sched = simclock.Real{}
	}
	s.engine = compile.NewEngine(s.policy, sched)
	// Every document apply is gated by the static policy verifier:
	// error-severity findings (an inert deny shadowed by a broader allow, a
	// window that can never fire) reject the document atomically; warnings
	// surface through the admin API and dfictl.
	s.engine.SetCheck(verify.Check)
	if cfg.policySet {
		if _, err := s.engine.SetSource(cfg.policySource); err != nil {
			return nil, fmt.Errorf("dfi: policy source: %w", err)
		}
	}

	if cfg.sloEnabled {
		objectives := cfg.sloObjectives
		if len(objectives) == 0 {
			objectives = DefaultSLOObjectives(s.metrics, s.audit.Failures)
		}
		s.slo = slo.New(cfg.clock, s.metrics, objectives...)
		interval := cfg.sloInterval
		if interval == 0 {
			interval = 10 * time.Second
		}
		if interval > 0 {
			s.slo.Run(sched, interval)
		}
	}

	var err error
	s.proxy, err = proxy.New(proxy.Config{
		PCP:              s.pcp,
		DialController:   cfg.dial,
		Clock:            cfg.clock,
		Latency:          cfg.proxyLat,
		Obs:              s.metrics,
		FlowStatsTimeout: cfg.statsTimeout,
		EventLoopWorkers: cfg.evloopWorkers,
	})
	if err != nil {
		return nil, fmt.Errorf("dfi: %w", err)
	}

	detach, err := sensors.AttachEntityManagerTraced(s.bus, s.entity, s.spans)
	if err != nil {
		return nil, fmt.Errorf("dfi: %w", err)
	}
	s.detachFn = detach

	s.pcp.Start()
	return s, nil
}

// registerObservability registers the System-level instruments: the span
// and audit families plus Go runtime self-metrics, so /v1/metrics exposes
// process health alongside the DFI counters.
func (s *System) registerObservability() {
	s.metrics.CounterFunc("dfi_span_committed_total",
		"Causal spans committed to the span store (including overwritten ones).",
		s.spans.Committed)
	s.metrics.CounterFunc("dfi_audit_records_total",
		"Records appended to the enforcement audit log.", s.audit.Records)
	s.metrics.CounterFunc("dfi_audit_bytes_total",
		"Bytes appended to the enforcement audit log.", s.audit.BytesWritten)
	s.metrics.CounterFunc("dfi_audit_rotations_total",
		"Audit log size-based rotations.", s.audit.Rotations)
	s.metrics.CounterFunc("dfi_audit_append_failures_total",
		"Audit records lost to marshal or I/O failures.", s.audit.Failures)
	s.metrics.GaugeFunc("dfi_go_goroutines",
		"Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	s.metrics.GaugeFunc("dfi_go_heap_bytes",
		"Heap bytes in use (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	s.metrics.GaugeFunc("dfi_go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time in seconds (monotone).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
}

// ServeSwitch interposes DFI on one switch's OpenFlow connection, dialing
// the controller behind it. It blocks until the connection closes; run one
// goroutine per switch.
func (s *System) ServeSwitch(conn io.ReadWriteCloser) error {
	return s.proxy.ServeSwitch(conn)
}

// HandleSwitch interposes DFI on one switch connection without blocking
// the caller: it returns once the connection is registered and invokes
// done (if non-nil) when the session ends. With WithEventLoop the
// connection consumes no goroutines while it lives; otherwise it holds
// the two relay goroutines ServeSwitch would.
func (s *System) HandleSwitch(conn io.ReadWriteCloser, done func(error)) error {
	return s.proxy.HandleSwitch(conn, done)
}

// Policy returns the Policy Manager (for PDPs and administration).
func (s *System) Policy() *policy.Manager { return s.policy }

// Entity returns the Entity Resolution Manager.
func (s *System) Entity() *entity.Manager { return s.entity }

// PCP returns the Policy Compilation Point.
func (s *System) PCP() *pcp.PCP { return s.pcp }

// PolicyEngine returns the policy-language engine: the incremental
// compiler that keeps the Policy Manager in sync with the loaded
// policytext document (group membership churn, template instantiation,
// temporal windows). Always non-nil; with no source loaded it holds an
// empty document.
func (s *System) PolicyEngine() *compile.Engine { return s.engine }

// Proxy returns the interposition proxy (for statistics).
func (s *System) Proxy() *proxy.Proxy { return s.proxy }

// DFIProxy returns the proxy.
//
// Deprecated: use Proxy. Retained for callers written against the
// pre-observability API; it is a trivial wrapper and will be removed.
func (s *System) DFIProxy() *proxy.Proxy { return s.Proxy() }

// Metrics returns the registry holding every component's instruments
// (the one passed to WithMetrics, or the System's private registry).
func (s *System) Metrics() *obs.Registry { return s.metrics }

// Traces returns the admission trace ring (never nil; disabled rings
// simply record nothing).
func (s *System) Traces() *obs.TraceRing { return s.traces }

// Spans returns the causal span store, nil when WithCausalTracing(-1)
// disabled it (every obs.SpanStore method is nil-safe).
func (s *System) Spans() *obs.SpanStore { return s.spans }

// Audit returns the enforcement audit log, nil unless WithAuditLog
// enabled it (every obs.AuditLog method is nil-safe).
func (s *System) Audit() *obs.AuditLog { return s.audit }

// SLO returns the service-level-objective engine, nil unless WithSLO
// enabled it (every slo.Engine method is nil-safe).
func (s *System) SLO() *slo.Engine { return s.slo }

// EventBus returns the sensor event bus.
func (s *System) EventBus() *bus.Bus { return s.bus }

// Close stops the PCP workers, detaches sensor subscriptions, shuts down
// the proxy's event-loop engine (closing its relayed connections) and
// closes the audit log. Goroutine-mode switch connections terminate when
// their streams close.
func (s *System) Close() {
	s.slo.Close()
	s.proxy.Close()
	s.pcp.Stop()
	if s.detachFn != nil {
		s.detachFn()
	}
	if s.ownsBus {
		s.bus.Close()
	} else {
		// A shared bus outlives this System; stop feeding our span store.
		s.bus.SetTracer(nil)
	}
	_ = s.audit.Close()
}
