package dfi_test

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/bus"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/sensors"
)

func newTracedSystem(t *testing.T, extra ...dfi.Option) *dfi.System {
	t.Helper()
	opts := append([]dfi.Option{dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
		a, b := bufpipe.New()
		ctl := controller.New(controller.Config{})
		go func() { _ = ctl.Serve(b) }()
		return a, nil
	})}, extra...)
	sys, err := dfi.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

// TestRevocationTraceIsConnected drives the paper's dynamic-revocation
// chain — sensor event → entity-binding update → policy revocation →
// cookie-scoped flush → proxy flow-mod write — and asserts every hop lands
// in ONE trace with correct parent edges. Run under -race this also
// exercises the span store against concurrent bus delivery.
func TestRevocationTraceIsConnected(t *testing.T) {
	sys := newTracedSystem(t)
	sys.PCP().AttachSwitch(1, nopSwitch{})

	pm := sys.Policy()
	if err := pm.RegisterPDP("ops", 50); err != nil {
		t.Fatal(err)
	}
	id, err := pm.Insert(policy.Rule{PDP: "ops", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{Host: "h1"}})
	if err != nil {
		t.Fatal(err)
	}

	// A security component reacting to the same sensor event the entity
	// manager consumes: revoke the rule, propagating the event's trace.
	sub, err := sys.EventBus().Subscribe(sensors.TopicDHCP, func(ev bus.Event) {
		if err := pm.RevokeCtx(ev.Trace, id); err != nil {
			t.Errorf("revoke: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	sensors.NewDHCPSensor(sys.EventBus()).Record(
		netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseMAC("02:00:00:00:00:01"), true)

	// Bus delivery and the revocation flush are asynchronous; poll for a
	// single trace containing every hop.
	want := []string{obs.CompBus, obs.CompEntity, obs.CompPolicy, obs.CompPCP, obs.CompProxy}
	var linked []obs.Span
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		byTrace := map[obs.TraceID]map[string]bool{}
		for _, sp := range sys.Spans().Last(128) {
			m := byTrace[sp.Trace]
			if m == nil {
				m = map[string]bool{}
				byTrace[sp.Trace] = m
			}
			m[sp.Component] = true
		}
		for id, comps := range byTrace {
			ok := true
			for _, w := range want {
				ok = ok && comps[w]
			}
			if ok {
				linked = sys.Spans().ByTrace(id)
			}
		}
		if linked != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if linked == nil {
		t.Fatalf("no single trace links %v; spans:\n%+v", want, sys.Spans().Last(128))
	}

	// Check the causal edges, not just co-membership: every hop's Parent
	// must be the span id of the hop that caused it.
	byComp := map[string]obs.Span{}
	for _, sp := range linked {
		byComp[sp.Component] = sp
	}
	pub, ent := byComp[obs.CompBus], byComp[obs.CompEntity]
	pol, flush, fm := byComp[obs.CompPolicy], byComp[obs.CompPCP], byComp[obs.CompProxy]
	if ent.Parent != pub.ID {
		t.Errorf("entity span parent = %d, want bus publish %d", ent.Parent, pub.ID)
	}
	if pol.Parent != pub.ID {
		t.Errorf("policy span parent = %d, want bus publish %d", pol.Parent, pub.ID)
	}
	if flush.Parent != pol.ID {
		t.Errorf("flush span parent = %d, want policy revoke %d", flush.Parent, pol.ID)
	}
	if fm.Parent != flush.ID {
		t.Errorf("flow-mod span parent = %d, want flush compile %d", fm.Parent, flush.ID)
	}
	if pol.Stage != "revoke" || pol.RuleID != uint64(id) {
		t.Errorf("policy span = %+v, want revoke of rule %d", pol, id)
	}
	if flush.Stage != "flush_compile" || fm.Stage != "flow_mod_write" || fm.DPID != 1 {
		t.Errorf("flush/fm spans = %+v / %+v", flush, fm)
	}
}

// TestAuditChainRoundTrip is the CI audit step: boot a system with the
// audit log enabled, drive bindings, policy mutations and admissions, and
// check the on-disk hash chain verifies — then stops verifying once a
// single byte is flipped.
func TestAuditChainRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	sys := newTracedSystem(t, dfi.WithAuditLog(path, 0))
	sys.PCP().AttachSwitch(1, nopSwitch{})

	erm := sys.Entity()
	erm.BindIPMAC(netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseMAC("02:00:00:00:00:01"))
	erm.BindHostIP("h1", netpkt.MustParseIPv4("10.0.0.1"))
	erm.BindUserHost("alice", "h1")

	pm := sys.Policy()
	if err := pm.RegisterPDP("ops", 50); err != nil {
		t.Fatal(err)
	}
	id, err := pm.Insert(policy.Rule{PDP: "ops", Action: policy.ActionAllow})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		sys.PCP().Process(admissionRequest(benchFrame()))
	}
	if err := pm.Revoke(id); err != nil {
		t.Fatal(err)
	}

	audit := sys.Audit()
	n, err := audit.Verify()
	if err != nil {
		t.Fatalf("audit chain failed on an untouched log: %v", err)
	}
	// 3 bindings + insert + admissions + revoke + flush, at least.
	if n < 7 {
		t.Fatalf("audited %d records, want >=7", n)
	}
	kinds := map[string]int{}
	for _, r := range audit.Last(64) {
		kinds[r.Kind]++
	}
	if kinds["binding"] < 3 || kinds["policy"] < 2 || kinds["decision"] < 3 {
		t.Fatalf("audit kinds = %v", kinds)
	}

	// One flipped byte anywhere breaks verification.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.VerifyAuditChain(audit.Files(), audit.Head()); err == nil {
		t.Fatal("verification accepted a flipped byte")
	}
}

// admissionRequest wraps a frame in the packet-in request shape the PCP
// admits.
func admissionRequest(frame []byte) *pcp.Request {
	return &pcp.Request{DPID: 1, PacketIn: &openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		Reason:   openflow.PacketInReasonNoMatch,
		Match:    &openflow.Match{InPort: openflow.U32(3)},
		Data:     frame,
	}}
}
