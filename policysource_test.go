package dfi_test

import (
	"io"
	"strings"
	"testing"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/simclock"
)

func dialBufController() (io.ReadWriteCloser, error) {
	a, b := bufpipe.New()
	ctl := controller.New(controller.Config{})
	go func() { _ = ctl.Serve(b) }()
	return a, nil
}

func TestWithPolicySource(t *testing.T) {
	sys, err := dfi.New(
		dfi.WithControllerDialer(dialBufController),
		dfi.WithPolicySource(`
group eng { user alice; user bob }
pdp corp priority 50
allow proto tcp from group eng to host mail port 143
`))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Policy().Len() != 2 {
		t.Fatalf("policy has %d rules, want 2", sys.Policy().Len())
	}
	if src := sys.PolicyEngine().Source(); !strings.Contains(src, "group eng") {
		t.Fatalf("engine source = %q", src)
	}
	// The engine stays live for runtime transformation.
	d, err := sys.PolicyEngine().AddMember("eng", "user carol")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Insert) != 1 || sys.Policy().Len() != 3 {
		t.Fatalf("membership add delta = %+v, len = %d", d, sys.Policy().Len())
	}
}

func TestWithPolicySourceRejectsBadDocument(t *testing.T) {
	_, err := dfi.New(
		dfi.WithControllerDialer(dialBufController),
		dfi.WithPolicySource("allow from group ghosts\n"))
	if err == nil || !strings.Contains(err.Error(), "policy source") {
		t.Fatalf("New error = %v", err)
	}
}

// TestWithPolicySourceTemporalUsesSystemClock: when the system clock is a
// simclock Scheduler, temporal windows in the policy document follow
// virtual time.
func TestWithPolicySourceTemporalUsesSystemClock(t *testing.T) {
	epoch := time.Date(2026, 1, 5, 8, 0, 0, 0, time.UTC) // Monday 08:00
	sim := simclock.NewSimulated(epoch)
	sys, err := dfi.New(
		dfi.WithControllerDialer(dialBufController),
		dfi.WithClock(sim),
		dfi.WithPolicySource(`
pdp corp priority 50
allow from host office between 09:00-17:00
`))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Policy().Len() != 0 {
		t.Fatal("window active before 09:00")
	}
	sim.RunUntil(epoch.Add(2 * time.Hour)) // 10:00
	if sys.Policy().Len() != 1 {
		t.Fatal("window not opened at 10:00 virtual time")
	}
	sim.RunUntil(epoch.Add(11 * time.Hour)) // 19:00
	if sys.Policy().Len() != 0 {
		t.Fatal("window not closed at 19:00 virtual time")
	}
}
